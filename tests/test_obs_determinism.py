"""Observability must observe, never perturb.

The regression the ISSUE demands: a YARN campaign run with tracing and
metrics enabled produces byte-identical campaign outcomes — including
per-run simulated durations, event counts, and injection timestamps — as
the same campaign with observability disabled.  Any drift means the
instrumentation scheduled an event, consumed RNG, or touched the access
bus, which would silently invalidate every traced experiment.
"""

import json

from repro.bugs import matcher_for_system
from repro.core.injection import run_campaign
from repro.obs import Observability
from tests.conftest import prepared


_CACHE = {}


def run_yarn_campaign(key, obs=None):
    """Full-campaign runs are ~seconds each; cache them per test module."""
    if key not in _CACHE:
        system, analysis, profile, baseline = prepared("yarn")
        _CACHE[key] = run_campaign(
            system, analysis, profile.dynamic_points, baseline=baseline,
            matcher=matcher_for_system("yarn"), obs=obs,
        )
    return _CACHE[key]


def fingerprint(result):
    """Byte-exact serialization of everything a campaign decides.

    Diagnosis records are built with observability on *and* off, and
    carry the per-run simulated duration, the sim-event count, and the
    injection timestamp — so equal fingerprints pin both the outcomes
    and the simulated event order.
    """
    return json.dumps(
        [d.to_dict() for d in result.diagnoses()], sort_keys=True,
    ).encode()


def test_yarn_campaign_identical_with_observability_on_and_off():
    plain = run_yarn_campaign("plain")
    traced = run_yarn_campaign("traced-a", obs=Observability())
    assert fingerprint(plain) == fingerprint(traced)
    # aggregate views agree too
    assert plain.sim_seconds == traced.sim_seconds
    assert [o.fired for o in plain.outcomes] == [o.fired for o in traced.outcomes]
    assert plain.detected_bugs().keys() == traced.detected_bugs().keys()
    # and the traced run actually observed something
    assert traced.metrics["counters"]["sim.events_processed"] > 0


def test_observability_run_to_run_stability():
    """Two traced runs agree with each other (no hidden wall-clock state)."""
    a = run_yarn_campaign("traced-a", obs=Observability())
    b = run_yarn_campaign("traced-b", obs=Observability())
    assert fingerprint(a) == fingerprint(b)
    assert a.metrics["counters"] == b.metrics["counters"]
