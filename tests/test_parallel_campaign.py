"""The parallel campaign executor's contract: parallel == sequential.

A campaign run with ``CampaignConfig(workers=N)`` must be outcome- and
report-identical to the same campaign run sequentially — same outcomes in
the same (point) order, same matched bugs, same merged metrics, same
re-stitched trace, same diagnoses — with only wall-clock times allowed to
differ.  Plus the journal: a campaign killed mid-run resumes from its
``journal_path`` without re-running completed points, and a journal
written under a different campaign identity is refused.
"""

import json
import warnings

import pytest

from repro.bugs import matcher_for_system
from repro.core.injection import CampaignConfig, JournalMismatch, run_campaign
from repro.obs import Observability
from tests.conftest import prepared

N_POINTS = 12

#: wall-clock-dependent span attrs / outcome fields, excluded from identity
_WALL_ATTRS = ("wall_seconds", "workers")


def _campaign(workers, journal_path=None, obs=None, n_points=N_POINTS, **knobs):
    system, analysis, profile, baseline = prepared("yarn")
    cfg = CampaignConfig(workers=workers, journal_path=journal_path, **knobs)
    return run_campaign(
        system, analysis, profile.dynamic_points[:n_points], campaign=cfg,
        baseline=baseline, matcher=matcher_for_system("yarn"), obs=obs,
    )


def _outcome_dicts(result):
    dicts = [o.to_dict() for o in result.outcomes]
    for d in dicts:
        d.pop("wall_seconds")
    return dicts


def _span_dicts(obs):
    spans = [span.to_dict() for span in obs.tracer.spans]
    for span in spans:
        for attr in _WALL_ATTRS:
            span.get("attrs", {}).pop(attr, None)
    return spans


def _fingerprint(obs):
    """The cross-run identity of a traced campaign (no wall-clock)."""
    return json.dumps([d.to_dict() for d in obs.diagnoses], sort_keys=True)


# ----------------------------------------------------------------------
# determinism: workers=4 is byte-identical to workers=1
# ----------------------------------------------------------------------

def test_parallel_campaign_identical_to_sequential():
    prepared("yarn")  # warm the cache outside the obs contexts
    obs_seq, obs_par = Observability(), Observability()
    with obs_seq:
        seq = _campaign(1, obs=obs_seq)
    with obs_par:
        par = _campaign(4, obs=obs_par)

    assert par.workers == 4 and seq.workers == 1
    assert _outcome_dicts(par) == _outcome_dicts(seq)
    assert sorted(par.detected_bugs()) == sorted(seq.detected_bugs())
    assert par.sim_seconds == seq.sim_seconds
    # merged metrics are exactly the sequential snapshot
    assert obs_par.metrics.snapshot() == obs_seq.metrics.snapshot()
    # re-stitched trace: same spans, same ids, same parentage, same order
    assert _span_dicts(obs_par) == _span_dicts(obs_seq)
    assert obs_par.tracer.dropped == obs_seq.tracer.dropped
    # diagnoses are the report surface: identical, in point order
    assert _fingerprint(obs_par) == _fingerprint(obs_seq)


def test_parallel_campaign_without_obs_matches_sequential():
    seq = _campaign(1, n_points=6)
    par = _campaign(3, n_points=6)
    assert _outcome_dicts(par) == _outcome_dicts(seq)
    assert len(par.diagnoses()) == 6
    assert [d.to_dict() for d in par.diagnoses()] == \
        [d.to_dict() for d in seq.diagnoses()]


def test_speedup_reports_realized_parallelism():
    result = _campaign(2, n_points=4)
    assert result.speedup == pytest.approx(
        sum(o.wall_seconds for o in result.outcomes) / result.wall_seconds
    )


# ----------------------------------------------------------------------
# journal: kill mid-campaign, resume, finish — same answer
# ----------------------------------------------------------------------

@pytest.mark.parametrize("resume_workers", [1, 2])
def test_journal_resume_after_partial_run(tmp_path, resume_workers):
    reference = _campaign(1)
    journal = tmp_path / "campaign.jsonl"

    full = _campaign(1, journal_path=str(journal))
    assert _outcome_dicts(full) == _outcome_dicts(reference)
    lines = journal.read_text().splitlines()
    assert len(lines) == N_POINTS + 1  # meta + one line per point

    # simulate a kill after 4 completed points, mid-write of the 5th
    journal.write_text("\n".join(lines[:5]) + "\n" + lines[5][:37])

    resumed = _campaign(resume_workers, journal_path=str(journal))
    assert resumed.resumed == 4
    assert _outcome_dicts(resumed) == _outcome_dicts(reference)
    assert sorted(resumed.detected_bugs()) == sorted(reference.detected_bugs())
    # the journal is whole again: a further re-run replays everything
    replay = _campaign(1, journal_path=str(journal))
    assert replay.resumed == N_POINTS
    assert _outcome_dicts(replay) == _outcome_dicts(reference)


def test_journal_resume_restores_diagnoses_in_point_order(tmp_path):
    journal = tmp_path / "campaign.jsonl"
    obs_ref = Observability()
    with obs_ref:
        _campaign(1, obs=obs_ref)

    _campaign(1, journal_path=str(journal))
    lines = journal.read_text().splitlines()
    journal.write_text("\n".join(lines[:6]) + "\n")  # meta + 5 outcomes
    obs = Observability()
    with obs:
        resumed = _campaign(2, journal_path=str(journal), obs=obs)
    assert resumed.resumed == 5
    # journaled points keep their diagnosis records, in point order
    assert _fingerprint(obs) == _fingerprint(obs_ref)


def test_journal_refuses_mismatched_campaign(tmp_path):
    journal = tmp_path / "campaign.jsonl"
    _campaign(1, journal_path=str(journal), n_points=4)
    with pytest.raises(JournalMismatch):
        _campaign(1, journal_path=str(journal), n_points=4, wait=2.0)
    with pytest.raises(JournalMismatch):
        _campaign(1, journal_path=str(journal), n_points=3)


# ----------------------------------------------------------------------
# the PR-2 deprecation shims are gone: old loose kwargs are a TypeError
# ----------------------------------------------------------------------

def test_legacy_kwargs_raise_type_error():
    system, analysis, profile, baseline = prepared("yarn")
    points = profile.dynamic_points[:4]
    with pytest.raises(TypeError):
        run_campaign(system, analysis, points, baseline=baseline,
                     classify_timeouts=False,
                     matcher=matcher_for_system("yarn"))
    with pytest.raises(TypeError):
        run_campaign(system, analysis, points, baseline=baseline,
                     seed=1, matcher=matcher_for_system("yarn"))
    from repro.core.injection import run_one_injection
    with pytest.raises(TypeError):
        run_one_injection(system, analysis, points[0], baseline, wait=2.0)


def test_legacy_positional_seed_raises_type_error():
    from repro import crashtuner, get_system
    with pytest.raises(TypeError, match="CampaignConfig"):
        crashtuner(get_system("cassandra"), 0, run_injection=False)


def test_campaign_config_is_frozen_and_replaceable():
    cfg = CampaignConfig(workers=4)
    with pytest.raises(Exception):
        cfg.workers = 8
    assert cfg.replace(seed=7) == CampaignConfig(workers=4, seed=7)
    # no-op replace returns an equal config
    assert cfg.replace() == cfg


def test_new_api_emits_no_deprecation_warnings():
    system, analysis, profile, baseline = prepared("yarn")
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        run_campaign(system, analysis, profile.dynamic_points[:2],
                     campaign=CampaignConfig(), baseline=baseline,
                     matcher=matcher_for_system("yarn"))
