"""Representative-point execution (``point_select="representative"``).

The campaign clusters its dynamic crash points into equivalence classes
keyed on the profiler's predicted injection, executes one representative
per class (plus an audit draw), and propagates the representative's
outcome to the rest.  The contract under test:

* **no missed bugs** — on the seeded yarn and hbase systems, with
  observability on, representative mode detects the identical bug set
  full execution does (the headline gate, also enforced in CI);
* **real savings** — at the default ``audit_fraction=0.1`` the two
  systems together execute at most 60% of their dynamic points;
* **honest bookkeeping** — propagated outcomes carry their own point
  identity but the representative's evidence, flagged so analytics
  never double-counts them;
* **the audit lane works** — a member disagreeing with its
  representative promotes the whole class to full execution;
* **determinism** — sequential, parallel, and snapshot paths agree
  byte-for-byte; journals resume exactly and mismatch on plan drift.
"""

import json
from pathlib import Path

import pytest

from tests.conftest import prepared
from repro.bugs import matcher_for_system
from repro.core.injection import (
    CampaignConfig,
    JournalMismatch,
    build_classes,
    run_campaign,
)
from repro.core.injection import executor as executor_mod
from repro.core.injection.classes import PointClass, SelectionPlan
from repro.obs import Observability

_CACHE = {}


def _both_modes(system_name):
    """(full result, representative result, rep obs), cached per session."""
    if system_name not in _CACHE:
        system, analysis, profile, baseline = prepared(system_name)
        matcher = matcher_for_system(system_name)
        obs_full = Observability()
        with obs_full:
            full = run_campaign(system, analysis, profile.dynamic_points,
                                campaign=CampaignConfig(), baseline=baseline,
                                matcher=matcher, obs=obs_full)
        obs_rep = Observability()
        with obs_rep:
            rep = run_campaign(
                system, analysis, profile.dynamic_points,
                campaign=CampaignConfig(point_select="representative"),
                baseline=baseline, matcher=matcher, obs=obs_rep)
        _CACHE[system_name] = (full, rep, obs_rep)
    return _CACHE[system_name]


def _outcome_dicts(result):
    dicts = [o.to_dict() for o in result.outcomes]
    for d in dicts:
        d.pop("wall_seconds")
    return dicts


def _behavior(outcome):
    return (tuple(sorted(outcome.verdict.kinds())),
            tuple(sorted(outcome.matched_bugs)))


# ---------------------------------------------------------------------------
# the headline gate: no missed bugs, real savings
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("system_name", ["yarn", "hbase"])
def test_representative_detects_identical_bug_set(system_name):
    full, rep, _ = _both_modes(system_name)
    full_bugs = sorted(full.detected_bugs())
    rep_bugs = sorted(rep.detected_bugs())
    assert full_bugs, "seeded system detected nothing under full execution"
    assert rep_bugs == full_bugs
    # and not just the bug *set*: every point's verdict + attribution is
    # identical, propagated or executed
    assert ([_behavior(o) for o in rep.outcomes]
            == [_behavior(o) for o in full.outcomes])
    assert rep.point_select == "representative"
    assert rep.classes["executed"] < len(full.outcomes)


def test_aggregate_execution_fraction_at_most_60_percent():
    executed = total = 0
    for system_name in ("yarn", "hbase"):
        _, rep, _ = _both_modes(system_name)
        executed += rep.classes["executed"]
        total += len(rep.outcomes)
    assert executed / total <= 0.60, (
        f"representative mode executed {executed}/{total} points "
        f"({executed / total:.0%}) across yarn+hbase"
    )


# ---------------------------------------------------------------------------
# the class plan
# ---------------------------------------------------------------------------
def test_class_plan_partitions_points():
    _, _, _ = _both_modes("yarn")
    _, _, profile, _ = prepared("yarn")
    points = profile.dynamic_points
    plan = build_classes(points, 0.1)
    seen = sorted(i for cls in plan.classes for i in cls.members)
    assert seen == list(range(len(points)))
    for cls in plan.classes:
        keys = [points[i].key() for i in cls.members]
        assert keys == sorted(keys)
        assert cls.representative == cls.members[0]
        assert cls.representative not in cls.audited
        for i in cls.members:
            assert plan.class_of[i] == cls.class_id
    assert plan.digest() == build_classes(points, 0.1).digest()
    assert plan.digest() != build_classes(points, 0.5).digest()


def test_propagated_outcomes_carry_own_identity():
    _, rep, _ = _both_modes("yarn")
    _, _, profile, _ = prepared("yarn")
    points = profile.dynamic_points
    by_class = {}
    for outcome in rep.outcomes:
        if not outcome.propagated:
            by_class.setdefault(outcome.class_id, outcome)
    propagated = [(i, o) for i, o in enumerate(rep.outcomes) if o.propagated]
    assert propagated, "yarn has duplicate classes; something must propagate"
    for index, outcome in propagated:
        dpoint = points[index]
        representative = by_class[outcome.class_id]
        # its own identity...
        assert outcome.dpoint is dpoint
        assert outcome.diagnosis.point == dpoint.point.describe()
        assert outcome.diagnosis.stack == list(dpoint.stack)
        assert outcome.diagnosis.propagated
        assert outcome.diagnosis.point_class == outcome.class_id
        # ...the representative's evidence...
        assert _behavior(outcome) == _behavior(representative)
        assert outcome.fired == representative.fired
        # ...and no cost of its own
        assert outcome.wall_seconds == 0.0
        assert outcome.duration == 0.0


def test_full_mode_dicts_unchanged_by_new_fields():
    full, _, _ = _both_modes("yarn")
    for data in _outcome_dicts(full):
        assert "class_id" not in data
        assert "propagated" not in data


def test_diagnoses_rejoin_in_point_order():
    _, rep, obs_rep = _both_modes("yarn")
    assert len(obs_rep.diagnoses) == len(rep.outcomes)
    assert [d.point for d in obs_rep.diagnoses] == [
        o.dpoint.point.describe() for o in rep.outcomes
    ]
    assert ([d.propagated for d in obs_rep.diagnoses]
            == [o.propagated for o in rep.outcomes])


def test_purity_counters_in_metrics_registry():
    _, rep, obs_rep = _both_modes("yarn")
    counters = obs_rep.metrics.snapshot()["counters"]
    assert counters["campaign.classes"] == rep.classes["classes"]
    assert counters["campaign.classes_promoted"] == rep.classes["promoted"]
    assert counters["campaign.points_audited"] == rep.classes["audited"]
    assert counters["campaign.points_propagated"] == rep.classes["propagated"]
    gauges = obs_rep.metrics.snapshot()["gauges"]
    assert gauges["campaign.class_purity"] == pytest.approx(
        1.0 - rep.classes["promoted"] / rep.classes["classes"]
    )


# ---------------------------------------------------------------------------
# the audit lane: disagreement promotes the whole class
# ---------------------------------------------------------------------------
def test_audit_disagreement_promotes_class(monkeypatch):
    system, analysis, profile, baseline = prepared("yarn")
    matcher = matcher_for_system("yarn")
    points = profile.dynamic_points[:12]
    full = run_campaign(system, analysis, points, campaign=CampaignConfig(),
                        baseline=baseline, matcher=matcher)
    behaviors = {_behavior(o) for o in full.outcomes}
    assert len(behaviors) > 1, "subset too uniform to force a disagreement"

    def one_impure_class(pts, audit_fraction=0.1):
        # every point in one class, every non-representative audited:
        # some audited member must disagree with the representative
        members = tuple(sorted(range(len(pts)), key=lambda i: pts[i].key()))
        cls = PointClass(class_id="deadbeef0000", signature=("forced",),
                        members=members, representative=members[0],
                        audited=members[1:])
        return SelectionPlan(
            classes=[cls],
            class_of={i: cls.class_id for i in members},
            representatives=[cls.representative],
            audited=list(cls.audited),
        )

    monkeypatch.setattr(executor_mod, "build_classes", one_impure_class)
    rep = run_campaign(
        system, analysis, points,
        campaign=CampaignConfig(point_select="representative"),
        baseline=baseline, matcher=matcher)
    assert rep.classes["promoted"] == 1
    assert rep.classes["propagated"] == 0
    assert rep.classes["executed"] == len(points)
    # a promoted class is fully executed: behavior-identical to full mode
    assert ([_behavior(o) for o in rep.outcomes]
            == [_behavior(o) for o in full.outcomes])
    assert all(not o.propagated for o in rep.outcomes)


# ---------------------------------------------------------------------------
# execution paths and resume
# ---------------------------------------------------------------------------
def test_sequential_parallel_snapshot_identical():
    system, analysis, profile, baseline = prepared("yarn")
    matcher = matcher_for_system("yarn")
    points = profile.dynamic_points[:12]

    def run(**overrides):
        cfg = CampaignConfig(point_select="representative", **overrides)
        return run_campaign(system, analysis, points, campaign=cfg,
                            baseline=baseline, matcher=matcher)

    sequential = run()
    parallel = run(workers=2, force_workers=True)
    snapshot = run(execution="snapshot")
    assert _outcome_dicts(parallel) == _outcome_dicts(sequential)
    assert _outcome_dicts(snapshot) == _outcome_dicts(sequential)
    assert snapshot.snapshot_stats is not None
    assert snapshot.classes == sequential.classes


def test_journal_resume_is_exact(tmp_path):
    system, analysis, profile, baseline = prepared("yarn")
    matcher = matcher_for_system("yarn")
    points = profile.dynamic_points[:20]
    journal = tmp_path / "journal.jsonl"
    cfg = CampaignConfig(point_select="representative",
                         journal_path=journal)
    one = run_campaign(system, analysis, points, campaign=cfg,
                       baseline=baseline, matcher=matcher)
    meta = json.loads(journal.read_text().splitlines()[0])
    assert meta["point_select"] == "representative"
    assert meta["classes"] == build_classes(points, cfg.audit_fraction).digest()

    # interrupt after six outcomes (meta line + 6), then resume
    lines = journal.read_text().splitlines()
    journal.write_text("\n".join(lines[:7]) + "\n")
    two = run_campaign(system, analysis, points, campaign=cfg,
                       baseline=baseline, matcher=matcher)
    assert two.resumed == 6
    assert _outcome_dicts(two) == _outcome_dicts(one)


def test_journal_mismatches_on_plan_drift(tmp_path):
    system, analysis, profile, baseline = prepared("yarn")
    matcher = matcher_for_system("yarn")
    points = profile.dynamic_points[:8]
    journal = tmp_path / "journal.jsonl"
    run_campaign(system, analysis, points,
                 campaign=CampaignConfig(point_select="representative",
                                         journal_path=journal),
                 baseline=baseline, matcher=matcher)
    # a different audit fraction is a different selection plan
    with pytest.raises(JournalMismatch):
        run_campaign(system, analysis, points,
                     campaign=CampaignConfig(point_select="representative",
                                             audit_fraction=0.9,
                                             journal_path=journal),
                     baseline=baseline, matcher=matcher)
    # and so is a full-mode journal resumed under representative mode
    full_journal = tmp_path / "full.jsonl"
    run_campaign(system, analysis, points,
                 campaign=CampaignConfig(journal_path=full_journal),
                 baseline=baseline, matcher=matcher)
    with pytest.raises(JournalMismatch):
        run_campaign(system, analysis, points,
                     campaign=CampaignConfig(point_select="representative",
                                             journal_path=full_journal),
                     baseline=baseline, matcher=matcher)


# ---------------------------------------------------------------------------
# config validation and point identity
# ---------------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ValueError, match="point_select"):
        CampaignConfig(point_select="sampled")
    with pytest.raises(ValueError, match="audit_fraction"):
        CampaignConfig(point_select="representative", audit_fraction=1.5)
    with pytest.raises(ValueError, match="random_fallback"):
        CampaignConfig(point_select="representative", random_fallback=True)


def test_describe_includes_full_stack():
    _, _, profile, _ = prepared("yarn")
    deep = [d for d in profile.dynamic_points if len(d.stack) >= 2]
    assert deep, "yarn profile should reach nested call strings"
    for dpoint in deep:
        text = dpoint.describe()
        for frame in dpoint.stack:
            assert frame in text
        assert " > ".join(dpoint.stack) in text


def test_fire_fields_do_not_change_point_identity():
    _, _, profile, _ = prepared("yarn")
    dpoint = profile.dynamic_points[0]
    twin = type(dpoint)(point=dpoint.point, stack=dpoint.stack,
                        scale=dpoint.scale)
    assert twin == dpoint
    assert twin.key() == dpoint.key()
    assert hash(twin) == hash(dpoint)
