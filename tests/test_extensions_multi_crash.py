"""Tests for the multi-crash extension (the paper's future work)."""

from repro.bugs import matcher_for_system
from repro.core.extensions import run_multi_crash_campaign
from repro.core.extensions.multi_crash import select_pairs
from tests.conftest import prepared


def test_select_pairs_is_ordered_cross_method_and_capped():
    _, _, profile, _ = prepared("hdfs")
    pairs = select_pairs(profile.dynamic_points, max_pairs=7)
    assert 0 < len(pairs) <= 7
    for first, second in pairs:
        assert first is not second
        assert first.point.enclosing != second.point.enclosing


def test_multi_crash_campaign_runs_and_chains():
    system, analysis, profile, baseline = prepared("hdfs")
    result = run_multi_crash_campaign(
        system, analysis, profile.dynamic_points,
        baseline=baseline, matcher=matcher_for_system("hdfs"), max_pairs=6,
    )
    assert result.outcomes
    for outcome in result.outcomes:
        # the second trigger can only have fired after the first
        if outcome.second_fired:
            assert outcome.first_fired


def test_multi_crash_finds_at_least_single_crash_bugs():
    system, analysis, profile, baseline = prepared("cassandra")
    result = run_multi_crash_campaign(
        system, analysis, profile.dynamic_points,
        baseline=baseline, matcher=matcher_for_system("cassandra"), max_pairs=6,
    )
    # pairs subsume single injections when the first fault is survivable;
    # the known single-crash bug appears among the pair runs too
    assert "CA-15131" in result.detected_bugs() or result.flagged()
