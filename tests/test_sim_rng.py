"""Unit tests for deterministic randomness and stable hashing."""

from repro.sim import SimRandom, stable_hash


def test_same_seed_same_root_sequence():
    a = SimRandom(42)
    b = SimRandom(42)
    assert [a.uniform(0, 1) for _ in range(5)] == [b.uniform(0, 1) for _ in range(5)]


def test_different_seeds_differ():
    assert SimRandom(1).uniform(0, 1) != SimRandom(2).uniform(0, 1)


def test_named_streams_are_stable():
    a = SimRandom(7).stream("network")
    b = SimRandom(7).stream("network")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_named_streams_are_independent_of_creation_order():
    r1 = SimRandom(7)
    net_first = r1.stream("network").random()
    r2 = SimRandom(7)
    r2.stream("other")  # creating another stream first must not perturb it
    net_second = r2.stream("network").random()
    assert net_first == net_second


def test_streams_with_different_names_differ():
    r = SimRandom(7)
    assert r.stream("a").random() != r.stream("b").random()


def test_choice_and_randint_work():
    r = SimRandom(3)
    assert r.choice(["x"]) == "x"
    assert 1 <= r.randint(1, 5) <= 5


def test_stable_hash_is_deterministic_constant():
    # Not just stable within a process: this value must never change, or
    # placement-sensitive tests would silently shift.
    assert stable_hash("row0001") == stable_hash("row0001")
    assert stable_hash("") == 0
    assert stable_hash("a") != stable_hash("b")
