"""Tests for the interprocedural analysis engine: summaries, provenance,
superset equivalence with the single-shot path, and incremental caching."""

import ast
import textwrap
import types as types_mod
from types import SimpleNamespace

import pytest

from repro.core.analysis import (
    AnalysisEngine,
    analyze_system,
    compute_crash_points,
    compute_summaries,
    load_sources,
    point_key,
)
from repro.core.analysis.logging_statements import ModuleSource
from repro.core.analysis.static_points import MetaInfoTypes, extract_access_points
from repro.core.analysis.types import ExprTyper, TypeModel, TypeRef
from repro.systems import get_system
from tests.conftest import prepared


def make_source(name: str, code: str) -> ModuleSource:
    code = textwrap.dedent(code)
    return ModuleSource(module=types_mod.ModuleType(name), name=name,
                        source=code, tree=ast.parse(code))


EMPTY_LOGS = SimpleNamespace(meta_slots=set())


# ---------------------------------------------------------------------------
# superset equivalence: engine-on ⊇ engine-off, identical Table 12
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("system_name", ["yarn", "hbase"])
def test_engine_is_strict_superset_of_single_shot(system_name):
    _, on, _, _ = prepared(system_name)  # session default: engine on
    assert on.engine_used
    off = analyze_system(get_system(system_name), engine=False)
    assert not off.engine_used

    off_keys = {point_key(p) for p in off.crash.crash_points}
    intra = [p for p in on.crash.crash_points if p.lane == "intra"]
    inter = [p for p in on.crash.crash_points if p.lane == "inter"]

    # the engine's intra lane IS the single-shot result
    assert {point_key(p) for p in intra} == off_keys
    # and every point the engine adds is genuinely new
    assert not off_keys & {point_key(p) for p in inter}
    # pruning statistics (Table 12) are byte-identical to engine-off
    assert on.crash.pruned_constructor == off.crash.pruned_constructor
    assert on.crash.pruned_unused == off.crash.pruned_unused
    assert on.crash.pruned_sanity == off.crash.pruned_sanity
    assert on.crash.promoted == off.crash.promoted

    # at least one interprocedurally discovered crash point per system,
    # with a complete provenance chain back to a seed logging statement
    assert inter, f"no interprocedural crash points found in {system_name}"
    for point in inter:
        key = point_key(point)
        assert on.engine.provenance.reaches_seed(key)
        chain = on.engine.provenance.chain_for(key)
        assert any("log statement" in line for line in chain)


def test_engine_extras_extend_meta_access_points():
    _, on, _, _ = prepared("yarn")
    inter = [p for p in on.crash.crash_points if p.lane == "inter"]
    meta_keys = {point_key(p) for p in on.crash.meta_access_points}
    # Table 10's invariant survives the merge: crash points ⊆ meta accesses
    assert all(point_key(p) in meta_keys for p in inter)
    assert on.totals()["static_crash_points"] <= on.totals()["meta_access_points"]


# ---------------------------------------------------------------------------
# summary fixpoint units
# ---------------------------------------------------------------------------
SUMMARY_CODE = """
    from typing import Dict, List
    from repro.cluster.ids import NodeId

    class Helper:
        def __init__(self, node_id: NodeId):
            self.node = node_id

        def fetch(self):
            return self.node

    class User:
        def __init__(self):
            self.h = Helper(NodeId("h", 1))
            self.nodes: List[NodeId] = []

        def use(self):
            n = self.h.fetch()
            return n

        def give(self):
            self._take(self.h)

        def _take(self, helper):
            return helper.node

        def scan(self):
            for w in self.nodes:
                yield w
"""


@pytest.fixture(scope="module")
def summary_model():
    from repro.cluster import ids

    sources = [make_source("summod", SUMMARY_CODE)] + load_sources([ids])
    model = TypeModel.build(sources)
    table, iterations = compute_summaries(model)
    return model, table, iterations


def test_return_type_inferred_from_return_expressions(summary_model):
    model, table, iterations = summary_model
    assert iterations >= 1
    assert table.return_type("Helper", "fetch") == TypeRef("NodeId")
    # the summary feeds back into expression typing
    user = model.classes["User"]
    typer = ExprTyper(model, user, user.methods["use"], summaries=table)
    call = ast.parse("self.h.fetch()", mode="eval").body
    assert typer.type_of(call) == TypeRef("NodeId")
    # without summaries the same expression is untypeable
    bare = ExprTyper(model, user, user.methods["use"])
    assert bare.type_of(call) is None


def test_argument_types_propagate_into_unannotated_params(summary_model):
    model, table, _ = summary_model
    assert table.param_type("User", "_take", "helper") == TypeRef("Helper")
    user = model.classes["User"]
    typer = ExprTyper(model, user, user.methods["_take"], summaries=table)
    read = ast.parse("helper.node", mode="eval").body
    assert typer.type_of(read) == TypeRef("NodeId")


def test_loop_targets_are_element_typed(summary_model):
    model, table, _ = summary_model
    user = model.classes["User"]
    typer = ExprTyper(model, user, user.methods["scan"], summaries=table)
    assert typer.type_of(ast.parse("w", mode="eval").body) == TypeRef("NodeId")
    # element typing is an engine-lane feature: baseline stays blind
    bare = ExprTyper(model, user, user.methods["scan"])
    assert bare.type_of(ast.parse("w", mode="eval").body) is None


def test_summary_use_recording_drains_facts(summary_model):
    model, table, _ = summary_model
    user = model.classes["User"]
    table.record_uses = True
    table.drain_uses()
    typer = ExprTyper(model, user, user.methods["_take"], summaries=table)
    typer.type_of(ast.parse("helper.node", mode="eval").body)
    facts = table.drain_uses()
    table.record_uses = False
    assert ("User", "_take", "param", "helper") in facts


# ---------------------------------------------------------------------------
# incremental cache
# ---------------------------------------------------------------------------
MOD_A = """
    class Alpha:
        def __init__(self):
            self.beta = Beta()

        def run(self):
            return self.beta.ping()
"""
MOD_B = """
    class Beta:
        def __init__(self):
            self.count = 0

        def ping(self):
            return self.count
"""
MOD_C = """
    class Gamma:
        def __init__(self):
            self.tag = "g"

        def label(self):
            return self.tag
"""


def _cache_sources(touch=()):
    out = []
    for name, code in (("mod_a", MOD_A), ("mod_b", MOD_B), ("mod_c", MOD_C)):
        code = textwrap.dedent(code)
        if name in touch:
            code = code + "\n# touched\n"
        out.append(make_source(name, code))
    return out


def test_incremental_cache_reextracts_only_dependents():
    engine = AnalysisEngine()
    r1 = engine.analyze(_cache_sources(), [], EMPTY_LOGS)
    assert r1.stats["modules_reextracted"] == 3
    assert r1.stats["modules_cached"] == 0

    # identical sources: everything comes from the cache
    r2 = engine.analyze(_cache_sources(), [], EMPTY_LOGS)
    assert r2.stats["modules_changed"] == 0
    assert r2.stats["modules_reextracted"] == 0
    assert r2.stats["modules_cached"] == 3

    # mod_c shares no call edges: touching it re-extracts only mod_c
    r3 = engine.analyze(_cache_sources(touch={"mod_c"}), [], EMPTY_LOGS)
    assert r3.stats["modules_changed"] == 1
    assert r3.stats["modules_reextracted"] == 1

    # mod_b is called from mod_a (Alpha -> Beta), so touching mod_b
    # invalidates both; mod_c (unchanged since r3) stays cached
    r4 = engine.analyze(_cache_sources(touch={"mod_c", "mod_b"}), [], EMPTY_LOGS)
    assert r4.stats["modules_changed"] == 1
    assert r4.stats["modules_reextracted"] == 2
    assert r4.stats["modules_cached"] == 1


def test_patched_switchboard_change_flushes_cache():
    engine = AnalysisEngine()
    engine.analyze(_cache_sources(), [], EMPTY_LOGS)
    r = engine.analyze(_cache_sources(), [], EMPTY_LOGS,
                       patched=frozenset({"BUG-1"}))
    assert r.stats["modules_reextracted"] == 3


def test_cached_run_equals_cold_run_on_real_system():
    system = get_system("yarn")
    cold = analyze_system(system, engine=AnalysisEngine())
    engine = AnalysisEngine()
    engine.analyze(cold.sources, cold.statements, cold.log_result)
    warm = analyze_system(system, engine=engine)
    assert warm.engine.stats["modules_reextracted"] == 0
    assert ([point_key(p) for p in warm.crash.crash_points]
            == [point_key(p) for p in cold.crash.crash_points])


# ---------------------------------------------------------------------------
# promotion dispatches through subtype receivers
# ---------------------------------------------------------------------------
PROMOTE_CODE = """
    from typing import Dict, Optional
    from repro.cluster import Node, tracked_dict
    from repro.cluster.ids import NodeId

    class BaseMaster(Node):
        d: Dict[NodeId, str] = tracked_dict()

        def lookup(self, k: NodeId):
            return self.d.get(k)

    class SubMaster(BaseMaster):
        pass

    class Driver:
        def drive(self, m: SubMaster, k: NodeId):
            v = m.lookup(k)
            return len(str(v))
"""


def test_return_only_promotion_through_subtype_receiver():
    from repro.cluster import ids

    sources = [make_source("promomod", PROMOTE_CODE)] + load_sources([ids])
    model = TypeModel.build(sources)
    extraction = extract_access_points(model, sources)
    meta = MetaInfoTypes(
        logged_types={"NodeId"},
        types={"NodeId"},
        fields={("BaseMaster", "d")},
        logged_base_fields=set(),
    )
    result = compute_crash_points(model, extraction, meta)
    promoted = [p for p in result.crash_points if p.promoted]
    # the call site types its receiver as the subtype, but promotion
    # dispatches the return-only read through subtypes_of(BaseMaster)
    assert any(p.enclosing == "Driver.drive" for p in promoted)
