"""Integration tests for the miniature Hadoop2/Yarn + MapReduce system.

Covers clean operation, crash recovery, and every seeded bug in both its
buggy and patched behaviour (the patch flags model the accepted fixes).
"""

import pytest

from repro.bugs import seeded_bugs
from repro.systems import get_system, run_workload
from tests.conftest import inject_at

ALL_YARN_PATCHED = {"patched_bugs": frozenset(b.flag for b in seeded_bugs("yarn"))}


def run_yarn(seed=0, config=None, before_run=None, cooldown=0.0, scale=1, deadline=None):
    return run_workload(get_system("yarn"), seed=seed, config=config,
                        before_run=before_run, cooldown=cooldown, scale=scale,
                        deadline=deadline)


# ---------------------------------------------------------------------------
# clean operation
# ---------------------------------------------------------------------------
def test_clean_wordcount_succeeds():
    report = run_yarn()
    assert report.succeeded
    assert report.aborts == []
    assert report.log.errors() == []


def test_clean_run_is_deterministic():
    a = run_yarn(seed=3)
    b = run_yarn(seed=3)
    assert a.duration == b.duration
    assert [r.message for r in a.log.records] == [r.message for r in b.log.records]


def test_scaled_workload_runs_more_maps():
    small = run_yarn()
    big = run_yarn(scale=2)
    assert big.succeeded
    count = lambda rep: len(rep.log.grep("given task"))
    assert count(big) > count(small)


def test_logs_contain_figure5_patterns():
    report = run_yarn()
    messages = [r.message for r in report.log.records]
    assert any("registered as node" in m for m in messages)
    assert any(m.startswith("Assigned container") and " on host " in m for m in messages)
    assert any(m.startswith("Assigned container") and " to attempt_" in m for m in messages)
    assert any(m.startswith("JVM with ID: jvm_") for m in messages)


def test_curl_leg_served():
    report = run_yarn()
    client = report.cluster.nodes["client"]
    assert client.web_responses >= 1


# ---------------------------------------------------------------------------
# crash recovery (no seeded bug on the path)
# ---------------------------------------------------------------------------
def test_nm_crash_mid_job_recovers():
    # Crash a task node mid-run: attempts reschedule, the job succeeds.
    report = run_yarn(
        seed=1,
        config=ALL_YARN_PATCHED,
        before_run=lambda c, w: c.loop.schedule(2.5, lambda: c.crash_host("node2")),
        deadline=60.0,
    )
    assert report.succeeded
    assert any("transitioning to LOST" in r.message for r in report.log.records)


def test_am_host_crash_triggers_new_attempt():
    report = run_yarn(
        seed=1,
        config=ALL_YARN_PATCHED,
        before_run=lambda c, w: c.loop.schedule(2.4, lambda: c.crash_host("node1")),
        deadline=60.0,
    )
    assert report.succeeded
    assert any("Created new attempt" in r.message and "_000002" in r.message
               for r in report.log.records)


def test_rm_crash_is_cluster_down():
    report = run_yarn(
        before_run=lambda c, w: c.loop.schedule(1.0, lambda: c.crash_host("rm")),
    )
    assert not report.completed  # nothing can finish without the RM


def test_graceful_nm_shutdown_is_immediate_decommission():
    report = run_yarn(
        seed=1,
        config=ALL_YARN_PATCHED,
        before_run=lambda c, w: c.loop.schedule(2.5, lambda: c.shutdown_host("node2")),
        deadline=60.0,
    )
    assert report.succeeded
    assert any("unregistered gracefully" in r.message for r in report.log.records)


# ---------------------------------------------------------------------------
# seeded bugs: buggy vs patched
# ---------------------------------------------------------------------------
def test_yarn_9164_cluster_down_and_patch():
    outcome = inject_at("yarn", "on_am_unregister", field="nodes", op="read")
    assert "YARN-9164" in outcome.matched_bugs
    assert outcome.verdict.critical_aborts
    # The accepted patch adds a sanity check, so in the patched build the
    # read is no longer a crash point at all (the paper's optimization 3).
    from tests.conftest import find_dpoints, prepared

    _, _, profile, _ = prepared("yarn", ALL_YARN_PATCHED)
    assert find_dpoints(profile, "on_am_unregister", field="nodes", op="read") == []


def test_yarn_9238_invalid_allocate_and_patch():
    outcome = inject_at("yarn", "on_allocate", field="current_attempt", op="read")
    assert "YARN-9238" in outcome.matched_bugs
    patched = inject_at("yarn", "on_allocate", field="current_attempt", op="read",
                        config=ALL_YARN_PATCHED)
    assert "YARN-9238" not in patched.matched_bugs
    assert not patched.verdict.critical_aborts


def test_yarn_9165_scheduling_removed_container():
    outcome = inject_at("yarn", "on_acquire_container", field="containers", op="read")
    assert "YARN-9165" in outcome.matched_bugs
    from tests.conftest import find_dpoints, prepared

    _, _, profile, _ = prepared("yarn", ALL_YARN_PATCHED)
    assert find_dpoints(profile, "on_acquire_container", field="containers", op="read") == []


def test_yarn_5918_preferred_node_job_failure():
    outcome = inject_at("yarn", "_pick_node", field="nodes", op="read")
    assert "YARN-5918" in outcome.matched_bugs
    assert outcome.verdict.job_failure
    assert not outcome.verdict.critical_aborts  # app fails, RM survives
    patched = inject_at("yarn", "_pick_node", field="nodes", op="read",
                        config=ALL_YARN_PATCHED)
    assert not patched.verdict.job_failure


def test_yarn_9193_placement_on_removed_node():
    outcome = inject_at("yarn", "_assign_for_ask", field="nodes", op="read")
    assert "YARN-9193" in outcome.matched_bugs
    from tests.conftest import find_dpoints, prepared

    _, _, profile, _ = prepared("yarn", ALL_YARN_PATCHED)
    assert find_dpoints(profile, "_assign_for_ask", field="nodes", op="read") == []


def test_yarn_8649_release_leak():
    outcome = inject_at("yarn", "on_release_container", field="containers", op="read")
    assert "YARN-8649" in outcome.matched_bugs
    patched = inject_at("yarn", "on_release_container", field="containers", op="read",
                        config=ALL_YARN_PATCHED)
    assert "YARN-8649" not in patched.matched_bugs


def test_mr_3858_commit_window_hang_and_patch():
    outcome = inject_at("yarn", "on_commit_pending", field="commit_attempts",
                        op="write", classify_timeouts=False)
    assert "MR-3858" in outcome.matched_bugs
    assert outcome.verdict.hang
    patched = inject_at("yarn", "on_commit_pending", field="commit_attempts",
                        op="write", config=ALL_YARN_PATCHED, classify_timeouts=False)
    assert not patched.verdict.hang


def test_mr_7178_launch_timer_abort_and_patch():
    outcome = inject_at("yarn", "_launch_attempt", field="current_attempt", op="write")
    assert "MR-7178" in outcome.matched_bugs
    patched = inject_at("yarn", "_launch_attempt", field="current_attempt", op="write",
                        config=ALL_YARN_PATCHED)
    assert "MR-7178" not in patched.matched_bugs
    assert patched.verdict.kinds() in ([], ["uncommon-exception"]) or not patched.flagged


def test_timeout_issue_to1_reduce_fetch():
    outcome = inject_at("yarn", "on_done_commit", field="success_attempt", op="write")
    assert outcome.verdict.timeout_issue
    assert "TO-YARN-1" in outcome.matched_bugs


def test_timeout_issue_to2_am_launch_monitor():
    outcome = inject_at("yarn", "_allocate_master_container",
                        field="master_container", op="write")
    assert outcome.verdict.timeout_issue
    assert "TO-YARN-2" in outcome.matched_bugs


def test_fully_patched_yarn_survives_every_injection_without_cluster_down():
    from repro.bugs import matcher_for_system
    from repro.core.injection import CampaignConfig, run_campaign
    from tests.conftest import prepared

    system, analysis, profile, baseline = prepared("yarn", ALL_YARN_PATCHED)
    result = run_campaign(system, analysis, profile.dynamic_points,
                          campaign=CampaignConfig(classify_timeouts=False),
                          config=ALL_YARN_PATCHED, baseline=baseline,
                          matcher=matcher_for_system("yarn"))
    cluster_down = [o for o in result.outcomes if o.verdict.critical_aborts]
    assert cluster_down == []
    assert result.detected_bugs() == {}
