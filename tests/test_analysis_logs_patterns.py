"""Unit tests for logging-statement extraction and pattern matching."""

import pytest

from repro.core.analysis import (
    PatternIndex,
    find_logging_statements,
    load_sources,
    pattern_for,
)
from repro.core.analysis.logging_statements import LogStatement
from tests import toysys


@pytest.fixture(scope="module")
def statements():
    return find_logging_statements(load_sources([toysys]))


def test_all_logging_statements_found(statements):
    templates = {s.template for s in statements}
    assert "Worker from {} registered as {}" in templates
    assert "Assigned task {} to worker {}" in templates
    assert "peek {}" in templates


def test_statement_captures_arg_source_text(statements):
    stmt = next(s for s in statements if s.template.startswith("Worker from"))
    assert stmt.arg_sources == ("node_id.host", "node_id")
    assert stmt.level == "info"
    assert stmt.module == toysys.__name__


def test_statement_levels_detected(statements):
    assert {s.level for s in statements} == {"info", "debug"}


def test_pattern_regex_matches_figure5_shape():
    stmt = LogStatement("m", 1, "info", "Assigned container {} on host {}", ("c", "n"))
    pattern = pattern_for(stmt)
    values = pattern.match("Assigned container container_1_01_000003 on host node3:42349")
    assert values == ("container_1_01_000003", "node3:42349")


def test_pattern_rejects_other_messages():
    stmt = LogStatement("m", 1, "info", "Assigned container {} on host {}", ("c", "n"))
    assert pattern_for(stmt).match("NodeManager from node1 registered") is None


def test_pattern_with_no_placeholders():
    stmt = LogStatement("m", 1, "info", "Master started", ())
    pattern = pattern_for(stmt)
    assert pattern.num_slots == 0
    assert pattern.match("Master started") == ()


def test_pattern_escapes_regex_metacharacters():
    stmt = LogStatement("m", 1, "info", "cost (us): {}", ("t",))
    assert pattern_for(stmt).match("cost (us): 12") == ("12",)


def test_index_reverse_lookup_finds_right_pattern(statements):
    index = PatternIndex.from_statements(statements)
    hit = index.match("Worker from node3 registered as node3:42349")
    assert hit is not None
    pattern, values = hit
    assert pattern.template == "Worker from {} registered as {}"
    assert values == ("node3", "node3:42349")


def test_index_returns_none_for_foreign_instance(statements):
    index = PatternIndex.from_statements(statements)
    assert index.match("A message produced by some other system") is None


def test_index_candidates_ranked_by_token_overlap(statements):
    index = PatternIndex.from_statements(statements)
    candidates = index.candidates("Assigned task task_1 to worker node1:7100")
    assert candidates
    assert candidates[0].template == "Assigned task {} to worker {}"


def test_index_candidates_capped_at_ten():
    stmts = [
        LogStatement("m", i, "info", f"common prefix variant {i} value {{}}", ("x",))
        for i in range(25)
    ]
    index = PatternIndex.from_statements(stmts)
    assert len(index.candidates("common prefix variant 3 value 9")) <= 10


def test_ambiguous_instances_resolved_by_exact_match():
    stmts = [
        LogStatement("m", 1, "info", "state {} moved", ("a",)),
        LogStatement("m", 2, "info", "state {} moved to {}", ("a", "b")),
    ]
    index = PatternIndex.from_statements(stmts)
    pattern, values = index.match("state s1 moved to s2")
    assert pattern.statement.lineno == 2
    assert values == ("s1", "s2")
