"""The log hot-path fast lane's contract: fast lane == slow lane, only faster.

Template-identity matching, lazy rendering, and the online agent's
interesting-template early-out must be *invisible* in every report
surface: a full CrashTuner run (analysis → profile → campaign, with
observability on) under ``fast_lane(True)`` must be byte-identical — the
outcomes, the diagnoses, the merged metrics, the Table 11 rows — to the
same run forced down the paper-faithful scored-regex lane with
``fast_lane(False)``.  Only wall-clock fields may differ.

CI runs this module in the smoke job and fails the build if any test in
it is skipped (see .github/workflows/ci.yml) — the identity guarantee is
the whole justification for keeping the fast lane.
"""

import json

import pytest

from repro import crashtuner, get_system
from repro.core.analysis import analyze_system
from repro.core.analysis.logging_statements import LogStatement
from repro.core.analysis.patterns import (
    PatternIndex,
    fast_lane,
    fast_lane_enabled,
)
from repro.core.injection.online_log import OnlineMetaStore
from repro.mtlog.records import LogRecord
from repro.obs import Observability
from repro.systems.base import run_workload

# ----------------------------------------------------------------------
# the tentpole guarantee: full-pipeline byte-identity, obs on
# ----------------------------------------------------------------------

def _pipeline_fingerprint(result, obs):
    """Everything a run reports, minus wall-clock: one comparable dict."""
    outcomes = [o.to_dict() for o in result.campaign.outcomes]
    for d in outcomes:
        d.pop("wall_seconds")
    table11 = result.table11_row()
    for key in list(table11):
        if key.endswith("_wall_s") or key == "test_speedup":
            table11.pop(key)
    log = result.analysis.log_result
    return {
        "outcomes": outcomes,
        "detected_bugs": sorted(result.detected_bugs().items()),
        "diagnoses": [d.to_dict() for d in obs.diagnoses],
        "metrics": obs.metrics.snapshot(),
        "log_matched": [log.matched, log.unmatched],
        "meta_slots": sorted(map(repr, log.meta_slots)),
        "table11": table11,
    }


def _run_pipeline(system_name, enabled):
    obs = Observability()
    with fast_lane(enabled), obs:
        result = crashtuner(get_system(system_name), obs=obs)
    return _pipeline_fingerprint(result, obs)


@pytest.mark.parametrize("system_name", ["yarn", "hbase"])
def test_fast_lane_byte_identical_to_slow_lane(system_name):
    fast = _run_pipeline(system_name, True)
    slow = _run_pipeline(system_name, False)
    for key in fast:
        assert json.dumps(fast[key], sort_keys=True, default=str) == \
            json.dumps(slow[key], sort_keys=True, default=str), key


def test_fast_lane_flag_nests_and_restores():
    assert fast_lane_enabled()
    with fast_lane(False):
        assert not fast_lane_enabled()
        with fast_lane(True):
            assert fast_lane_enabled()
        assert not fast_lane_enabled()
    assert fast_lane_enabled()


# ----------------------------------------------------------------------
# per-record cross-check: identity and regex agree on real workload logs
# ----------------------------------------------------------------------

def test_identity_and_rendered_fallback_agree_on_every_yarn_record():
    system = get_system("yarn")
    analysis = analyze_system(system)
    records = run_workload(system, seed=0).cluster.log_collector.records
    assert records
    index = analysis.index
    for record in records:
        with fast_lane(True):
            via_identity = index.match_record(record)
        with fast_lane(False):
            via_regex = index.match_record(record)
        key = lambda hit: (hit[0].statement.key(), tuple(hit[1])) if hit else None
        assert key(via_identity) == key(via_regex), record.message


# ----------------------------------------------------------------------
# PatternIndex edge cases
# ----------------------------------------------------------------------

def _stmt(module, lineno, template):
    return LogStatement(module, lineno, "info",
                        template, tuple("a" * (template.count("{}"))))


def _record(template, args, location, message=None):
    return LogRecord(time=0.0, node="n1", component="c", level="info",
                     template=template, args=tuple(args), message=message,
                     location=location)


def test_candidate_tie_breaking_is_deterministic():
    # ten+ statements with identical token overlap: candidate order (and
    # therefore which regex wins) must be stable across index rebuilds
    stmts = [_stmt("m", i, f"tied common tokens variant{i} {{}}") for i in range(15)]
    message = "tied common tokens variant3 v"
    orders = []
    for _ in range(3):
        index = PatternIndex.from_statements(stmts)
        orders.append([p.statement.lineno for p in index.candidates(message)])
    assert orders[0] == orders[1] == orders[2]
    ranked = orders[0]
    # the exact-token statement outscores the tied rest...
    assert ranked[0] == 3
    # ...and the tied remainder ranks by insertion (statement) order
    assert ranked[1:] == sorted(ranked[1:])


def test_shared_template_disambiguated_by_location():
    shared = "Removing {} from the queue"
    stmts = [_stmt("mod.a", 10, shared), _stmt("mod.b", 99, shared)]
    index = PatternIndex.from_statements(stmts)
    hit = index.match_identity(shared, ("mod.b", 99), ("item7",))
    assert hit is not None
    pattern, values = hit
    assert pattern.statement.key() == ("mod.b", 99)
    assert values == ("item7",)
    # a location that is not one of the sharing statements cannot decide:
    # identity refuses and match_record falls back to the scored regex
    assert index.match_identity(shared, ("mod.c", 1), ("item7",)) is None
    record = _record(shared, ("item7",), ("mod.c", 1))
    fallback = index.match_record(record)
    assert fallback is not None and fallback[1] == ("item7",)


def test_identity_refuses_unknown_template_and_arity_mismatch():
    stmts = [_stmt("m", 1, "Assigned {} to {}")]
    index = PatternIndex.from_statements(stmts)
    assert index.match_identity("some foreign line", ("m", 1), ()) is None
    # logging bug in the system under test: extra arg is appended to the
    # rendered text, so only the regex lane reproduces the slow answer
    assert index.match_identity("Assigned {} to {}", ("m", 1),
                                ("t1", "n1", "extra")) is None
    record = _record("Assigned {} to {}", ("t1", "n1", "extra"), ("m", 1))
    hit = index.match_record(record)
    assert hit is not None
    assert hit[1] == ("t1", "n1 extra")  # the regex lane's reading


def test_match_record_on_rendered_text_only_record():
    # foreign record: a template that is really a rendered line, no args
    stmts = [_stmt("m", 1, "Worker {} joined pool {}")]
    index = PatternIndex.from_statements(stmts)
    record = _record("Worker w1 joined pool p2", (), ("other", 5),
                     message="Worker w1 joined pool p2")
    hit = index.match_record(record)
    assert hit is not None
    assert hit[1] == ("w1", "p2")


# ----------------------------------------------------------------------
# lazy rendering
# ----------------------------------------------------------------------

def test_record_message_rendered_lazily_and_cached():
    record = _record("x {} y {}", ("1", "2"), ("m", 1))
    assert record._message is None  # nothing rendered yet
    assert record.message == "x 1 y 2"
    assert record._message == "x 1 y 2"  # cached
    assert record.message is record._message


def test_record_explicit_message_wins_over_rendering():
    record = _record("x {}", ("1",), ("m", 1), message="pre-rendered")
    assert record.message == "pre-rendered"


def test_record_equality_ignores_render_cache():
    a = _record("x {}", ("1",), ("m", 1))
    b = _record("x {}", ("1",), ("m", 1))
    assert a == b and hash(a) == hash(b)
    _ = a.message  # render one of them
    assert a == b and hash(a) == hash(b)


# ----------------------------------------------------------------------
# OnlineMetaStore: one normalization at the boundary
# ----------------------------------------------------------------------

def test_store_normalizes_padded_values_once_at_the_boundary():
    store = OnlineMetaStore(hosts=["node1", "node2"])
    store.process(["  node1:8031  ", "\tapp_0001 ", "   "])
    # stored keys are the normalized forms, exactly once
    assert set(store.value_node) == {"node1:8031", "app_0001"}
    assert store.value_node["app_0001"] == "node1"
    # padded probes hit the same entries
    assert store.query("app_0001") == "node1"
    assert store.query("  app_0001\t") == "node1"
    assert store.query(" node1:8031 ") == "node1"
    # round-trip keeps normalized contents
    store2 = OnlineMetaStore(hosts=["node1", "node2"])
    store2.restore(store.checkpoint())
    assert store2.value_node == store.value_node
    assert store2.query("  app_0001 ") == "node1"
