"""Integration tests for the miniature HDFS."""

from repro.bugs import seeded_bugs
from repro.systems import get_system, run_workload
from tests.conftest import find_dpoints, inject_at, prepared

ALL_HDFS_PATCHED = {"patched_bugs": frozenset(b.flag for b in seeded_bugs("hdfs"))}


def run_hdfs(seed=0, config=None, before_run=None, deadline=None):
    return run_workload(get_system("hdfs"), seed=seed, config=config,
                        before_run=before_run, deadline=deadline)


def test_clean_dfsio_succeeds():
    report = run_hdfs()
    assert report.succeeded
    assert report.log.errors() == []


def test_files_replicated_to_factor():
    report = run_hdfs()
    nn = report.cluster.nodes["nn"]
    blocks = nn.blocks.snapshot()
    assert blocks
    assert all(len(b.locations) >= nn.replication for b in blocks.values())


def test_datanode_crash_triggers_rereplication():
    report = run_hdfs(
        seed=1,
        config=ALL_HDFS_PATCHED,
        before_run=lambda c, w: c.loop.schedule(1.5, lambda: c.crash_host("node1")),
        deadline=60.0,
    )
    assert report.succeeded
    nn = report.cluster.nodes["nn"]
    report.cluster.run(until=30.0)  # let the replication monitor settle
    for block in nn.blocks.snapshot().values():
        assert len(block.locations) >= nn.replication


def test_namenode_crash_is_cluster_down():
    report = run_hdfs(
        before_run=lambda c, w: c.loop.schedule(0.4, lambda: c.crash_host("nn")),
    )
    assert not report.succeeded


def test_reads_survive_one_datanode_loss():
    report = run_hdfs(
        seed=2,
        config=ALL_HDFS_PATCHED,
        before_run=lambda c, w: c.loop.schedule(1.0, lambda: c.shutdown_host("node2")),
        deadline=60.0,
    )
    assert report.succeeded


def test_hdfs_14216_request_fails_on_removed_node():
    outcome = inject_at("hdfs", "on_get_block_locations", field="datanodes", op="read")
    assert "HDFS-14216" in outcome.matched_bugs
    assert any("IPC handler caught exception" in u
               for u in outcome.verdict.uncommon_exceptions)


def test_hdfs_14216_patched_point_pruned():
    _, _, profile, _ = prepared("hdfs", ALL_HDFS_PATCHED)
    assert find_dpoints(profile, "on_get_block_locations", field="datanodes") == []


def test_hdfs_14372_shutdown_before_register_aborts():
    outcome = inject_at("hdfs", "_do_register", field="bpos", op="read")
    assert "HDFS-14372" in outcome.matched_bugs
    assert any("no attribute 'upper'" in a for a in outcome.verdict.uncommon_exceptions)


def test_hdfs_14372_patched_datanode_stops_cleanly():
    outcome = inject_at("hdfs", "_do_register", field="bpos", op="read",
                        config=ALL_HDFS_PATCHED)
    assert "HDFS-14372" not in outcome.matched_bugs
    assert not outcome.verdict.uncommon_exceptions


def test_hdfs_6231_replication_monitor_aborts_namenode():
    outcome = inject_at("hdfs", "_replication_monitor", field="datanodes", op="read")
    assert "HDFS-6231" in outcome.matched_bugs
    assert outcome.verdict.critical_aborts


def test_hdfs_6231_patched_point_pruned():
    _, _, profile, _ = prepared("hdfs", ALL_HDFS_PATCHED)
    assert find_dpoints(profile, "_replication_monitor", field="datanodes") == []


def test_edit_log_written():
    report = run_hdfs()
    nn = report.cluster.nodes["nn"]
    ops = [op for (op, _) in nn._disk.files["/nn/edits"]]
    assert "OP_ADD" in ops and "OP_CLOSE" in ops
