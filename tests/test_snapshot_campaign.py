"""The snapshot executor's contract: snapshot == replay, only faster.

A campaign run with ``CampaignConfig(execution="snapshot")`` forks the
recording pass at each point's first-fire instant and executes only the
suffix per injection.  It must be outcome- and report-identical to the
replay executor — same outcomes in point order, same verdicts and matched
bugs, same diagnoses, same merged metrics and re-stitched trace — with
only wall-clock times allowed to differ.  Any child-side failure must
degrade to an in-process replay of the affected point(s), never to a
different answer.  Plus the small-campaign degrade rule: a replay
campaign with fewer than ``workers * 2`` pending points runs in-process
unless ``force_workers`` pins the pool.
"""

import json

import pytest

from repro.bugs import matcher_for_system
from repro.core.injection import CampaignConfig, run_campaign
from repro.obs import Observability
from tests.conftest import prepared

N_POINTS = 12

#: wall-clock-dependent span attrs / outcome fields, excluded from identity
_WALL_ATTRS = ("wall_seconds", "workers")


def _campaign(system_name="yarn", n_points=N_POINTS, obs=None,
              journal_path=None, points=None, **knobs):
    system, analysis, profile, baseline = prepared(system_name)
    cfg = CampaignConfig(journal_path=journal_path, **knobs)
    if points is None:
        points = profile.dynamic_points[:n_points]
    return run_campaign(
        system, analysis, points, campaign=cfg,
        baseline=baseline, matcher=matcher_for_system(system_name), obs=obs,
    )


def _outcome_dicts(result):
    dicts = [o.to_dict() for o in result.outcomes]
    for d in dicts:
        d.pop("wall_seconds")
    return dicts


def _span_dicts(obs):
    spans = [span.to_dict() for span in obs.tracer.spans]
    for span in spans:
        for attr in _WALL_ATTRS:
            span.get("attrs", {}).pop(attr, None)
    return spans


def _fingerprint(obs):
    return json.dumps([d.to_dict() for d in obs.diagnoses], sort_keys=True)


def _bugs(result):
    return {bug: sorted(o.dpoint.point.describe() for o in outcomes)
            for bug, outcomes in result.detected_bugs().items()}


# ----------------------------------------------------------------------
# equivalence: snapshot is byte-identical to replay
# ----------------------------------------------------------------------

def test_snapshot_identical_to_replay_with_obs():
    prepared("yarn")  # warm the cache outside the obs contexts
    obs_rep, obs_snap = Observability(), Observability()
    with obs_rep:
        rep = _campaign(obs=obs_rep)
    with obs_snap:
        snap = _campaign(obs=obs_snap, execution="snapshot")

    assert rep.execution == "replay" and snap.execution == "snapshot"
    assert _outcome_dicts(snap) == _outcome_dicts(rep)
    assert _bugs(snap) == _bugs(rep)
    assert snap.sim_seconds == rep.sim_seconds
    # merged metrics are exactly the replay snapshot
    assert obs_snap.metrics.snapshot() == obs_rep.metrics.snapshot()
    # re-stitched trace: same spans, same ids, same parentage, same order
    assert _span_dicts(obs_snap) == _span_dicts(obs_rep)
    assert obs_snap.tracer.dropped == obs_rep.tracer.dropped
    assert _fingerprint(obs_snap) == _fingerprint(obs_rep)


def test_snapshot_identical_on_hbase():
    rep = _campaign("hbase", n_points=10)
    snap = _campaign("hbase", n_points=10, execution="snapshot")
    assert _outcome_dicts(snap) == _outcome_dicts(rep)
    assert _bugs(snap) == _bugs(rep)
    assert [d.to_dict() for d in snap.diagnoses()] == \
        [d.to_dict() for d in rep.diagnoses()]


def test_snapshot_reports_engine_stats():
    snap = _campaign(execution="snapshot")
    rep = _campaign(n_points=2)
    stats = snap.snapshot_stats
    assert stats is not None and rep.snapshot_stats is None
    accounted = (stats["resumed_points"] + stats["never_fired"]
                 + stats["aliased_points"] + stats["fallback_points"])
    assert accounted == N_POINTS
    # the snapshot forest: ONE recording pass per scale group, however
    # many points the group holds — never a per-chunk re-record from t=0
    system, _analysis, profile, _ = prepared("yarn")
    scales = {p.scale for p in profile.dynamic_points[:N_POINTS]}
    assert stats["recording_runs"] == len(scales)
    assert stats["fallback_points"] == 0
    # a flagged hang in this prefix is reclassified by resuming the same
    # snapshot a second time under the extended deadline
    assert stats["reclassified"] >= 1
    # every fired point left a kernel manifest of what its snapshot held
    for manifest in stats["manifests"].values():
        assert manifest["rng"] and manifest["point"]
        assert manifest["events_processed"] >= 0


def test_snapshot_with_workers_matches_single():
    one = _campaign(execution="snapshot")
    two = _campaign(execution="snapshot", workers=2)
    assert _outcome_dicts(two) == _outcome_dicts(one)
    assert two.workers_realized == 2
    assert [d.to_dict() for d in two.diagnoses()] == \
        [d.to_dict() for d in one.diagnoses()]


def test_snapshot_aliases_points_sharing_a_fire_event():
    """Two points firing at the same access event share one resume."""
    system, analysis, profile, baseline = prepared("yarn")
    dpoint = profile.dynamic_points[0]
    points = [dpoint, dpoint]  # same point twice: same first-fire event
    rep = _campaign(points=points)
    snap = _campaign(points=points, execution="snapshot")
    assert _outcome_dicts(snap) == _outcome_dicts(rep)
    assert snap.snapshot_stats["aliased_points"] == 1
    assert snap.snapshot_stats["resumed_points"] == 1


# ----------------------------------------------------------------------
# journal: kill mid-campaign, resume — across execution modes too
# ----------------------------------------------------------------------

def test_snapshot_journal_resume_after_partial_run(tmp_path):
    reference = _campaign()
    journal = tmp_path / "campaign.jsonl"

    full = _campaign(journal_path=str(journal), execution="snapshot")
    assert _outcome_dicts(full) == _outcome_dicts(reference)
    lines = journal.read_text().splitlines()
    assert len(lines) == N_POINTS + 1  # meta + one line per point

    # simulate a kill after 4 completed points, mid-write of the 5th
    journal.write_text("\n".join(lines[:5]) + "\n" + lines[5][:37])

    resumed = _campaign(journal_path=str(journal), execution="snapshot")
    assert resumed.resumed == 4
    assert _outcome_dicts(resumed) == _outcome_dicts(reference)
    assert _bugs(resumed) == _bugs(reference)


def test_journal_crosses_execution_modes(tmp_path):
    """The journal pins *what* was computed, not *how* — a campaign
    interrupted under replay resumes under snapshot (and vice versa)."""
    reference = _campaign()
    journal = tmp_path / "campaign.jsonl"
    _campaign(journal_path=str(journal))
    lines = journal.read_text().splitlines()
    journal.write_text("\n".join(lines[:7]) + "\n")  # meta + 6 outcomes

    resumed = _campaign(journal_path=str(journal), execution="snapshot")
    assert resumed.resumed == 6
    assert _outcome_dicts(resumed) == _outcome_dicts(reference)


# ----------------------------------------------------------------------
# degradation: child failures fall back to in-process replay
# ----------------------------------------------------------------------

def test_snapshot_falls_back_per_point_on_resumer_error(monkeypatch):
    reference = _campaign(n_points=4)
    import repro.core.injection.snapshot as snapshot_mod

    def _boom(report, state):
        raise RuntimeError("resumer judged nothing")

    # children inherit the patched module through fork
    monkeypatch.setattr(snapshot_mod, "_resumer_result", _boom)
    snap = _campaign(n_points=4, execution="snapshot")
    assert _outcome_dicts(snap) == _outcome_dicts(reference)
    assert snap.snapshot_stats["fallback_points"] == 4
    assert snap.snapshot_stats["resumed_points"] == 0


def test_snapshot_falls_back_whole_chunk_when_recorder_dies(monkeypatch):
    reference = _campaign(n_points=4)
    import repro.core.injection.snapshot as snapshot_mod

    def _boom(*args, **kwargs):
        raise RuntimeError("no recording pass today")

    monkeypatch.setattr(snapshot_mod, "run_workload", _boom)
    snap = _campaign(n_points=4, execution="snapshot")
    assert _outcome_dicts(snap) == _outcome_dicts(reference)
    assert snap.snapshot_stats["fallback_points"] == 4
    assert snap.snapshot_stats["recording_runs"] == 1


# ----------------------------------------------------------------------
# config surface
# ----------------------------------------------------------------------

def test_campaign_config_rejects_unknown_execution():
    with pytest.raises(ValueError, match="execution"):
        CampaignConfig(execution="teleport")


def test_small_replay_campaign_degrades_to_in_process():
    # 4 points < workers * 2: pool startup would dominate (Table 11's
    # zookeeper/cassandra rows), so the campaign runs in-process...
    degraded = _campaign(n_points=4, workers=4)
    assert degraded.workers == 4  # the *requested* pool size is kept
    assert degraded.workers_realized == 1
    # ...unless the caller explicitly pins the pool
    forced = _campaign(n_points=4, workers=4, force_workers=True)
    assert forced.workers_realized == 4
    assert _outcome_dicts(forced) == _outcome_dicts(degraded)
