"""Property-based tests (hypothesis) for the core data structures."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.state import BUS, FieldKey, TrackedDict, TrackedList, TrackedSet
from repro.core.analysis.logging_statements import LogStatement
from repro.core.analysis.meta_graph import MetaInfoGraph, host_in_value
from repro.core.analysis.patterns import PatternIndex, pattern_for
from repro.core.analysis.static_points import AccessPoint
from repro.core.injection import OnlineMetaStore, build_classes
from repro.core.profiler import DynamicCrashPoint
from repro.mtlog.logger import render
from repro.sim import SimLoop, stable_hash

keys = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
vals = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=8)

_KEY = FieldKey("prop.Test", "f")


# ---------------------------------------------------------------------------
# the event loop
# ---------------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=40))
def test_loop_fires_in_nondecreasing_time_order(delays):
    loop = SimLoop()
    fired = []
    for d in delays:
        loop.schedule(d, lambda: fired.append(loop.now))
    loop.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=10, allow_nan=False),
                          st.booleans()), max_size=30))
def test_loop_cancelled_events_never_fire(items):
    loop = SimLoop()
    fired = []
    events = []
    for i, (delay, cancel) in enumerate(items):
        events.append((loop.schedule(delay, lambda i=i: fired.append(i)), cancel))
    for event, cancel in events:
        if cancel:
            event.cancel()
    loop.run()
    expected = {i for i, (event, cancel) in enumerate(events) if not cancel}
    assert set(fired) == expected


# ---------------------------------------------------------------------------
# tracked containers behave like their plain counterparts
# ---------------------------------------------------------------------------
@given(st.lists(st.tuples(st.sampled_from(["put", "remove", "clear"]), keys, vals),
                max_size=50))
def test_tracked_dict_equivalent_to_dict(ops):
    BUS.reset()
    tracked = TrackedDict(_KEY)
    model = {}
    for op, k, v in ops:
        if op == "put":
            tracked.put(k, v)
            model[k] = v
        elif op == "remove":
            tracked.remove(k)
            model.pop(k, None)
        else:
            tracked.clear()
            model.clear()
        assert tracked.snapshot() == model
        assert tracked.size() == len(model)
        assert tracked.is_empty() == (not model)
    for k in model:
        assert tracked.get(k) == model[k]
        assert tracked.contains(k)


@given(st.lists(st.tuples(st.sampled_from(["add", "remove"]), keys), max_size=50))
def test_tracked_set_equivalent_to_set(ops):
    BUS.reset()
    tracked = TrackedSet(_KEY)
    model = set()
    for op, k in ops:
        if op == "add":
            tracked.add(k)
            model.add(k)
        else:
            tracked.remove(k)
            model.discard(k)
        assert tracked.snapshot() == model


@given(st.lists(st.tuples(st.sampled_from(["add", "remove"]), keys), max_size=50))
def test_tracked_list_equivalent_to_list(ops):
    BUS.reset()
    tracked = TrackedList(_KEY)
    model = []
    for op, k in ops:
        if op == "add":
            tracked.add(k)
            model.append(k)
        else:
            removed = tracked.remove(k)
            if k in model:
                model.remove(k)
                assert removed
        assert tracked.snapshot() == model


# ---------------------------------------------------------------------------
# logging round trips
# ---------------------------------------------------------------------------
@given(st.lists(vals, max_size=4), st.lists(st.text(
    alphabet=string.ascii_letters + " .,:;-", min_size=1, max_size=12), min_size=1,
    max_size=5))
def test_pattern_matches_rendered_template(args, parts):
    template = "{}".join(parts)
    slots = len(parts) - 1
    args = (args + [""] * slots)[:slots]
    message = render(template, tuple(args))
    stmt = LogStatement("m", 1, "info", template, tuple("x" for _ in range(slots)))
    pattern = pattern_for(stmt)
    matched = pattern.match(message)
    assert matched is not None
    assert render(template, matched) == message


@given(st.text(max_size=40))
def test_stable_hash_total_and_stable(text):
    assert stable_hash(text) == stable_hash(text)
    assert 0 <= stable_hash(text) < 2 ** 32


# ---------------------------------------------------------------------------
# meta-info graph and online store agree on direct associations
# ---------------------------------------------------------------------------
hostnames = st.sampled_from(["node1", "node2", "node3"])


@given(st.lists(st.tuples(hostnames, vals), min_size=1, max_size=20))
def test_store_and_graph_agree_on_pairwise_instances(instances):
    hosts = ["node1", "node2", "node3"]
    graph = MetaInfoGraph(hosts)
    store = OnlineMetaStore(hosts)
    for host, value in instances:
        pair = [f"{host}:7000", f"v-{value}"]
        graph.add_instance(pair)
        store.process(pair)
    graph.finalize()
    for host, value in instances:
        v = f"v-{value}"
        assert store.query(v) == graph.node_of(v)


@given(vals, hostnames)
def test_host_in_value_never_false_positive_on_foreign_text(value, host):
    # values synthesized without any hostname token never resolve
    assert host_in_value(f"zz-{value}-zz", ["node1", "node2", "node3"]) is None or (
        "node1" in value or "node2" in value or "node3" in value
    )


# the "never node-referencing" guarantee needs values that cannot spell
# a hostname — `vals` alone can generate the literal string "node1"
_noise = vals.filter(lambda v: "node1" not in v)


@given(st.lists(st.tuples(_noise, _noise), min_size=1, max_size=15))
def test_store_is_insensitive_to_unrelated_noise(pairs):
    store = OnlineMetaStore(["node1"])
    for a, b in pairs:
        store.process([f"x-{a}", f"y-{b}"])  # never node-referencing
    assert store.size() == 0


# ---------------------------------------------------------------------------
# representative-execution class building is input-order independent
# ---------------------------------------------------------------------------
_fire = st.one_of(
    st.just(("", "", -1.0, False)),          # profiled without a store
    st.just(("", "none", -1.0, False)),      # no value resolved
    st.tuples(hostnames, st.sampled_from(["shutdown", "crash"]),
              st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
              st.booleans()),
)


@st.composite
def _dpoints(draw):
    specs = draw(st.lists(
        st.tuples(st.integers(min_value=0, max_value=5),
                  st.sampled_from(["read", "write"]), _fire),
        min_size=1, max_size=25))
    out = []
    for n, (slot, op, (target, kind, time, self_flag)) in enumerate(specs):
        point = AccessPoint(
            module=f"mod{slot}", lineno=10 + slot, field_cls=f"mod{slot}.Cls",
            field_name=f"field{slot}", op=op, via="getfield",
            enclosing=f"Cls.m{slot}",
        )
        out.append(DynamicCrashPoint(
            point=point, stack=(f"mod{slot}.Cls.m{slot}:{20 + n % 3}",),
            scale=1 + slot % 2, fire_target=target, fire_kind=kind,
            fire_time=time, fire_self=self_flag,
        ))
    return out


@given(_dpoints(), st.randoms(use_true_random=False),
       st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
@settings(max_examples=60)
def test_build_classes_invariant_under_permutation(points, rng, fraction):
    shuffled = list(points)
    rng.shuffle(shuffled)
    plan = build_classes(points, fraction)
    other = build_classes(shuffled, fraction)
    assert plan.digest() == other.digest()
    # membership, representatives, and the audit draw all name the same
    # points (indices differ with input order; keys must not)
    def by_key(p, seq):
        return {
            "classes": {seq[i].key(): cls.class_id
                        for cls in p.classes for i in cls.members},
            "reps": {seq[i].key() for i in p.representatives},
            "audited": {seq[i].key() for i in p.audited},
        }
    assert by_key(plan, points) == by_key(other, shuffled)
