"""Edge-case tests for workload drivers and run_workload mechanics."""

import pytest

from repro.systems import all_systems, get_system, run_workload
from repro.systems.base import RunReport


def test_run_report_properties():
    base = dict(system="x", seed=0, duration=1.0, deadline=4.0, wall_seconds=0.1)
    ok = RunReport(completed=True, succeeded=True, **base)
    assert not ok.hang and not ok.job_failure
    failed = RunReport(completed=True, succeeded=False, **base)
    assert failed.job_failure and not failed.hang
    hung = RunReport(completed=False, succeeded=False, **base)
    assert hung.hang and not hung.job_failure


def test_keep_cluster_false_drops_heavy_state():
    report = run_workload(get_system("cassandra"), keep_cluster=False)
    assert report.succeeded
    assert report.cluster is None and report.log is None


def test_explicit_deadline_overrides_factor():
    report = run_workload(get_system("cassandra"), deadline=0.05)
    assert not report.completed
    assert report.deadline == 0.05
    assert report.duration == 0.05


def test_cooldown_extends_observation_not_duration():
    plain = run_workload(get_system("cassandra"), seed=0)
    cooled = run_workload(get_system("cassandra"), seed=0, cooldown=5.0)
    assert cooled.duration == pytest.approx(plain.duration)
    assert len(cooled.log.records) >= len(plain.log.records)


def test_before_run_hook_sees_installed_workload():
    seen = {}

    def hook(cluster, workload):
        seen["nodes"] = set(cluster.nodes)
        seen["workload"] = workload.name

    run_workload(get_system("hdfs"), before_run=hook)
    assert "client" in seen["nodes"] and "nn" in seen["nodes"]
    assert seen["workload"] == "TestDFSIO+curl"


def test_every_workload_reports_failures_when_unfinished():
    for system in all_systems():
        report = run_workload(system, deadline=0.05)
        assert not report.succeeded
        workload_failures = report.failures
        assert workload_failures, f"{system.name} reported no failure detail"


def test_scaled_workloads_have_more_work_units():
    report1 = run_workload(get_system("hdfs"), scale=1)
    report2 = run_workload(get_system("hdfs"), scale=2)
    files1 = len(report1.cluster.nodes["nn"].files.snapshot())
    files2 = len(report2.cluster.nodes["nn"].files.snapshot())
    assert files2 == 2 * files1


def test_wall_seconds_recorded():
    report = run_workload(get_system("zookeeper"))
    assert report.wall_seconds > 0
