"""Kernel and substrate checkpoint/restore — the snapshot mode's bedrock.

The snapshot executor forks whole processes, but its integrity manifests
and its determinism argument rest on the state captured here behaving
exactly as documented: a :class:`LoopCheckpoint` is immutable and
restorable any number of times, cloning a queue never perturbs event
ordering, a deadline override is consumed by exactly one run, and the
substrate stores (access bus, log collector, online meta store) round-trip
through their checkpoints.
"""

import pytest

from repro.cluster.state import AccessBus
from repro.core.injection.online_log import OnlineMetaStore
from repro.errors import SimulationError
from repro.mtlog.collector import LogCollector
from repro.mtlog.records import LogRecord
from repro.sim.loop import SimLoop
from repro.sim.rng import SimRandom


def _record(node="node1", message="m", args=()):
    return LogRecord(time=0.0, node=node, component="c", level="info",
                     template="m", args=tuple(args), message=message,
                     location=("mod", 1))


# ----------------------------------------------------------------------
# SimLoop
# ----------------------------------------------------------------------

def _trace_run(loop, until=None):
    trace = []
    loop.schedule(1.0, lambda: trace.append(("a", loop.now)))
    loop.schedule(2.0, lambda: trace.append(("b", loop.now)))
    loop.schedule(3.0, lambda: trace.append(("c", loop.now)))
    loop.run(until=until)
    return trace


def test_loop_checkpoint_restores_clock_counter_and_queue():
    loop = SimLoop()
    trace = []
    loop.schedule(1.0, lambda: trace.append("a"))
    loop.schedule(2.0, lambda: trace.append("b"))
    loop.run(until=1.0)
    cp = loop.checkpoint()
    assert cp.manifest() == {
        "time": 1.0, "events_processed": 1, "pending_events": 1,
    }

    loop.run()  # drain: "b" fires, state moves past the checkpoint
    assert trace == ["a", "b"]
    loop.restore(cp)
    assert loop.now == 1.0 and loop.events_processed == 1
    loop.run()
    assert trace == ["a", "b", "b"]  # the restored queue replays "b"


def test_loop_checkpoint_supports_repeated_restores():
    loop = SimLoop()
    fired = []
    loop.schedule(1.0, lambda: fired.append(loop.now))
    cp = loop.checkpoint()
    for _ in range(3):
        loop.restore(cp)
        loop.run()
    assert fired == [1.0, 1.0, 1.0]
    assert cp.pending() == 1  # restores never mutate the checkpoint


def test_loop_checkpoint_preserves_cancellation_and_order():
    loop = SimLoop()
    trace = []
    loop.schedule(1.0, lambda: trace.append("a"))
    doomed = loop.schedule(1.0, lambda: trace.append("doomed"))
    loop.schedule(1.0, lambda: trace.append("c"))
    doomed.cancel()
    cp = loop.checkpoint()
    assert cp.pending() == 2

    loop.restore(cp)
    loop.run()
    # cancellation survived, and same-time events kept their seq order
    assert trace == ["a", "c"]


def test_clone_does_not_consume_the_event_sequence():
    loop = SimLoop()
    trace = []
    loop.schedule(1.0, lambda: trace.append("first"))
    loop.checkpoint()  # clones the queue
    # an event scheduled *after* the checkpoint at the same time must
    # still sort after the earlier one
    loop.schedule(1.0, lambda: trace.append("second"))
    loop.run()
    assert trace == ["first", "second"]


def test_restore_inside_handler_is_refused():
    loop = SimLoop()
    cp = loop.checkpoint()
    failures = []

    def bad():
        try:
            loop.restore(cp)
        except SimulationError as exc:
            failures.append(str(exc))

    loop.schedule(1.0, bad)
    loop.run()
    assert failures and "running handler" in failures[0]


def test_override_deadline_is_consumed_by_one_run_only():
    loop = SimLoop()
    trace = _trace_run(loop, until=1.0)
    assert trace == [("a", 1.0)]

    # extend the *next* run mid-flight: the override replaces until=1.5
    loop.schedule(0.0, lambda: loop.override_deadline(2.5))
    loop.run(until=1.5)
    assert trace == [("a", 1.0), ("b", 2.0)]
    assert loop.now == 2.5  # clock advanced to the overriding deadline

    # ...and must not leak into the following run
    loop.run(until=2.6)
    assert trace == [("a", 1.0), ("b", 2.0)]


def test_unconsumed_override_does_not_leak_into_next_run():
    loop = SimLoop()
    fired = []
    loop.schedule(1.0, lambda: fired.append("a"))
    loop.run()  # drains; nothing in flight afterwards
    loop.override_deadline(100.0)
    loop.schedule(1.0, lambda: fired.append("b"))
    loop.run(until=5.0)
    # the pending override was aimed at a run that had already returned;
    # this run consumed it instead (documented: "or the next one started")
    assert fired == ["a", "b"] and loop.now == 100.0
    loop.schedule(1.0, lambda: fired.append("c"))
    loop.run(until=200.0)
    assert loop.now == 200.0  # no stale override replaced this deadline


# ----------------------------------------------------------------------
# SimRandom
# ----------------------------------------------------------------------

def test_rng_checkpoint_round_trips_the_root_stream():
    rng = SimRandom(seed=7)
    rng.uniform(0, 1)
    cp = rng.checkpoint()
    first = [rng.randint(0, 10**9) for _ in range(5)]
    rng.restore(cp)
    assert [rng.randint(0, 10**9) for _ in range(5)] == first


def test_rng_checkpoint_refuses_foreign_seed():
    cp = SimRandom(seed=1).checkpoint()
    with pytest.raises(ValueError, match="seed 1"):
        SimRandom(seed=2).restore(cp)


def test_rng_digest_distinguishes_states():
    rng = SimRandom(seed=3)
    before = rng.checkpoint().digest()
    assert rng.checkpoint().digest() == before  # digest is a pure function
    rng.uniform(0, 1)
    assert rng.checkpoint().digest() != before


# ----------------------------------------------------------------------
# substrate stores
# ----------------------------------------------------------------------

def test_access_bus_checkpoint_round_trips_configuration():
    bus = AccessBus()
    hook = lambda event: None  # noqa: E731
    bus.add_hook(hook)
    bus.capture_stacks = True
    cp = bus.checkpoint()
    bus.reset()
    assert not bus.enabled
    bus.restore(cp)
    assert bus.enabled and bus.capture_stacks
    bus.remove_hook(hook)
    assert not bus.enabled


def test_log_collector_checkpoint_truncates_streams():
    collector = LogCollector()
    tailed = []
    tail = tailed.append
    collector.subscribe(tail)
    collector.collect(_record(node="n1"))
    cp = collector.checkpoint()

    collector.unsubscribe(tail)
    collector.collect(_record(node="n1", message="later"))
    collector.collect(_record(node="n2"))
    assert len(collector.records) == 3 and "n2" in collector.by_node

    collector.restore(cp)
    assert len(collector.records) == 1
    assert list(collector.by_node) == ["n1"]
    # the subscriber list rewound too: the tail is live again
    collector.collect(_record(node="n1", message="after-restore"))
    assert [r.message for r in tailed] == ["m", "after-restore"]


def test_online_meta_store_checkpoint_round_trips():
    store = OnlineMetaStore(hosts=["node1", "node2"])
    store.process(["node1", "app_01"])
    cp = store.checkpoint()
    store.process(["node2", "app_02"])
    assert store.query("app_02") == "node2"
    store.restore(cp)
    assert store.query("app_01") == "node1"
    assert store.query("app_02") is None
    assert store.size() == len(cp["value_node"])
