"""Shared fixtures and helpers for the test suite."""

from typing import Any, Dict, Optional, Tuple

import pytest

from repro.bugs import matcher_for_system
from repro.cluster.state import BUS
from repro.core.analysis import analyze_system
from repro.core.injection import CampaignConfig, build_baseline, run_one_injection
from repro.core.profiler import profile_system
from repro.systems import get_system

_CACHE: Dict[Tuple[str, Any], Tuple] = {}


def _config_key(config: Optional[Dict[str, Any]]) -> Any:
    if not config:
        return None
    return tuple(sorted((k, tuple(sorted(v)) if isinstance(v, (set, frozenset)) else v)
                        for k, v in config.items()))


def prepared(system_name: str, config: Optional[Dict[str, Any]] = None):
    """(system, analysis, profile, baseline) for a config, cached per session."""
    key = (system_name, _config_key(config))
    if key not in _CACHE:
        system = get_system(system_name)
        analysis = analyze_system(system, config=config)
        profile = profile_system(system, analysis, config=config)
        baseline = build_baseline(system, config=config)
        _CACHE[key] = (system, analysis, profile, baseline)
    return _CACHE[key]


def find_dpoints(profile, enclosing_frag: str, field: Optional[str] = None,
                 op: Optional[str] = None, via: Optional[str] = None):
    out = []
    for dpoint in profile.dynamic_points:
        point = dpoint.point
        if enclosing_frag not in point.enclosing:
            continue
        if field is not None and point.field_name != field:
            continue
        if op is not None and point.op != op:
            continue
        if via is not None and point.via != via:
            continue
        out.append(dpoint)
    return out


def inject_at(
    system_name: str,
    enclosing_frag: str,
    field: Optional[str] = None,
    op: Optional[str] = None,
    via: Optional[str] = None,
    config: Optional[Dict[str, Any]] = None,
    classify_timeouts: bool = True,
):
    """Run one CrashTuner injection at the (unique) matching dynamic point."""
    system, analysis, profile, baseline = prepared(system_name, config)
    dpoints = find_dpoints(profile, enclosing_frag, field=field, op=op, via=via)
    assert dpoints, f"no dynamic crash point matching {enclosing_frag}/{field}/{op}"
    return run_one_injection(
        system, analysis, dpoints[0], baseline, config=config,
        campaign=CampaignConfig(classify_timeouts=classify_timeouts),
        matcher=matcher_for_system(system_name),
    )


@pytest.fixture(autouse=True)
def _clean_access_bus():
    """No test may leak hooks into the global bus."""
    yield
    assert not BUS.enabled, "a test leaked access-bus hooks"
    BUS.reset()
