"""Unit tests for the type model, meta-info graph, and Definition 2."""

import pytest

from repro.core.analysis import (
    analyze_logs,
    extract_access_points,
    find_logging_statements,
    host_in_value,
    infer_meta_info,
    load_sources,
    PatternIndex,
)
from repro.core.analysis.meta_graph import MetaInfoGraph
from repro.core.analysis.types import ExprTyper, TypeModel, TypeRef
from repro.systems import get_system, run_workload
from tests import toysys


@pytest.fixture(scope="module")
def sources():
    from repro.cluster import ids

    return load_sources([toysys, ids])


@pytest.fixture(scope="module")
def model(sources):
    return TypeModel.build(sources)


# ---------------------------------------------------------------------------
# TypeModel
# ---------------------------------------------------------------------------
def test_classes_discovered(model):
    assert "ToyMaster" in model.classes
    assert "WorkerRecord" in model.classes
    assert "NodeId" in model.classes  # from the shared id-records library


def test_collection_field_types_parsed(model):
    field = model.classes["ToyMaster"].fields["workers"]
    assert field.kind == "collection"
    assert str(field.type) == "Dict[NodeId, WorkerRecord]"


def test_tracked_ref_field_parsed(model):
    field = model.classes["ToyMaster"].fields["last_worker"]
    assert field.kind == "ref"
    assert str(field.type) == "Optional[NodeId]"


def test_ctor_param_assignment_infers_field_type(model):
    field = model.classes["WorkerRecord"].fields["node_id"]
    assert field.type == TypeRef("NodeId")
    assert field.constructor_only()


def test_field_assigned_in_other_methods_not_ctor_only(model):
    field = model.classes["ToyMaster"].fields["last_worker"]
    assert not field.constructor_only()  # written in on_register


def test_subtypes_and_context(model):
    assert "ToyMaster" in model.subtypes_of("Node")
    cls, method = model.context_of(toysys.__name__,
                                   model.classes["ToyMaster"].methods["on_use"].lineno + 1)
    assert cls.name == "ToyMaster"
    assert method.name == "on_use"


def test_expr_typer_resolves_params_fields_and_calls(model):
    cls = model.classes["ToyMaster"]
    method = cls.methods["on_use"]
    typer = ExprTyper(model, cls, method)
    import ast

    assert typer.type_of(ast.parse("node_id", mode="eval").body) == TypeRef("NodeId")
    assert typer.type_of(ast.parse("self", mode="eval").body) == TypeRef("ToyMaster")
    got = typer.type_of(ast.parse("self.lookup_worker(node_id)", mode="eval").body)
    assert got == TypeRef("Optional", (TypeRef("WorkerRecord"),))
    # the local assigned from the call
    assert typer.type_of(ast.parse("record", mode="eval").body) is not None
    assert typer.type_of(ast.parse("str(node_id)", mode="eval").body) == TypeRef("str")


def test_typeref_leaves_see_through_wrappers():
    t = TypeRef("Dict", (TypeRef("NodeId"), TypeRef("Optional", (TypeRef("Rec"),))))
    assert [l.name for l in t.leaves()] == ["NodeId", "Rec"]


# ---------------------------------------------------------------------------
# host matching and the meta-info graph
# ---------------------------------------------------------------------------
HOSTS = ["node1", "node2", "node3", "nn", "rm"]


def test_host_in_value_word_boundaries():
    assert host_in_value("node1:42349", HOSTS) == "node1"
    assert host_in_value("prefix node2 suffix", HOSTS) == "node2"
    assert host_in_value("node10:42349", HOSTS) is None
    assert host_in_value("alarm", HOSTS) is None


def test_host_in_value_prefers_host_port_form():
    # a BPOfferService-style value naming both the NN and the DN address
    value = "Block pool BP-1-nn-1559000000 service to node1:9866"
    assert host_in_value(value, HOSTS) == "node1"


def test_graph_relates_cooccurring_values():
    graph = MetaInfoGraph(HOSTS)
    graph.add_instance(["node3:42349", "container_3"])
    graph.add_instance(["container_3", "attempt_3"])
    graph.finalize()
    assert graph.node_of("container_3") == "node3"
    assert graph.node_of("attempt_3") == "node3"  # transitive, Figure 5(d)
    assert graph.is_meta_value("attempt_3")


def test_graph_discards_unrelated_values():
    graph = MetaInfoGraph(HOSTS)
    graph.add_instance(["loose_value_a", "loose_value_b"])
    graph.finalize()
    assert not graph.is_meta_value("loose_value_a")
    assert graph.node_of("loose_value_a") is None


def test_graph_dot_rendering_mentions_values():
    graph = MetaInfoGraph(HOSTS)
    graph.add_instance(["node1:42349", "container_9"])
    graph.finalize()
    dot = graph.to_dot()
    assert '"node1:42349"' in dot and '"container_9"' in dot


# ---------------------------------------------------------------------------
# Definition 2 on the toy system (end-to-end through real logs)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def toy_analysis(sources, model):
    from repro.cluster import Cluster
    from repro.cluster.ids import NodeId, TaskId, CLUSTER_TIMESTAMP, JobId, ApplicationId

    cluster = Cluster("toy")
    with cluster:
        master = toysys.ToyMaster(cluster, "master")
        worker = toysys.ToyMaster(cluster, "node1", port=7101)
        cluster.start_all()
        nid = NodeId("node1", 7100)
        task = TaskId(JobId(ApplicationId(CLUSTER_TIMESTAMP, 1)), "m", 1)
        master.on_register("node1", nid)
        master.on_assign("node1", task, nid)
        master.on_use("node1", nid)
        master.on_checked_use("node1", nid)
        master.on_peek("node1", nid)
        cluster.run()
        records = cluster.log_collector.records
    statements = find_logging_statements(sources)
    index = PatternIndex.from_statements(statements)
    log_result = analyze_logs(records, index, ["master", "node1"])
    extraction = extract_access_points(model, sources)
    meta = infer_meta_info(model, log_result, statements, extraction)
    return log_result, extraction, meta


def test_node_referencing_values_found(toy_analysis):
    log_result, _, _ = toy_analysis
    assert "node1:7100" in log_result.graph.node_values


def test_logged_types_seeded(toy_analysis):
    _, _, meta = toy_analysis
    assert "NodeId" in meta.logged_types
    assert "TaskId" in meta.logged_types


def test_containing_class_rule_derives_worker_record(toy_analysis):
    _, _, meta = toy_analysis
    assert "WorkerRecord" in meta.types  # ctor-only NodeId field


def test_unrelated_class_stays_non_meta(toy_analysis):
    _, _, meta = toy_analysis
    assert "UnrelatedRecord" not in meta.types


def test_base_typed_field_not_meta(toy_analysis):
    _, _, meta = toy_analysis
    assert ("ToyMaster", "counter") not in meta.fields


def test_meta_fields_include_collections_and_refs(toy_analysis):
    _, _, meta = toy_analysis
    assert ("ToyMaster", "workers") in meta.fields
    assert ("ToyMaster", "tasks") in meta.fields
    assert ("ToyMaster", "last_worker") in meta.fields
