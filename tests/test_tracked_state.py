"""Unit tests for tracked heap state and the access bus."""

from typing import Dict, List, Optional, Set

import pytest

from repro.cluster import (
    BUS,
    Cluster,
    Node,
    tracked_dict,
    tracked_list,
    tracked_ref,
    tracked_set,
)
from repro.cluster.ids import NodeId


class Holder:
    name: Optional[str] = tracked_ref()
    peers: Dict[str, str] = tracked_dict()
    tags: Set[str] = tracked_set()
    items: List[str] = tracked_list()

    def __init__(self):
        self.name = None


@pytest.fixture(autouse=True)
def reset_bus():
    BUS.reset()
    yield
    BUS.reset()


def capture():
    events = []
    BUS.add_hook(events.append)
    return events


# ---------------------------------------------------------------------------
# scalar refs
# ---------------------------------------------------------------------------
def test_ref_roundtrip():
    h = Holder()
    h.name = "x"
    assert h.name == "x"


def test_ref_default_none():
    assert Holder().name is None


def test_ref_instances_independent():
    a, b = Holder(), Holder()
    a.name = "a"
    assert b.name is None


def test_ref_write_emits_after_store():
    h = Holder()
    seen = []

    def hook(event):
        # the raw storage is consulted, not the descriptor, to avoid
        # re-entrant read events; the value is already stored at emit time
        seen.append((event.op, getattr(h, "_tracked_name", None)))

    BUS.add_hook(hook)
    h.name = "fresh"
    assert ("write", "fresh") in seen


def test_ref_read_emits_before_load_and_reloads_after_hooks():
    h = Holder()
    h2 = Holder()
    BUS.reset()
    h.name = "stale"

    def hook(event):
        if event.op == "read":
            # a hook-triggered recovery rewrites the field...
            object.__setattr__(h, "_tracked_name", "recovered")

    BUS.add_hook(hook)
    # ...and the reader observes the post-hook value (pre-read semantics)
    assert h.name == "recovered"
    del h2


def test_events_carry_field_identity():
    h = Holder()
    events = capture()
    h.name = "v"
    assert events[-1].field.name == "name"
    assert events[-1].field.cls.endswith("Holder")


def test_events_carry_location_of_access_site():
    h = Holder()
    events = capture()
    h.name = "v"  # the access site is THIS line
    module, lineno = events[-1].location
    assert module == __name__
    assert lineno > 0


# ---------------------------------------------------------------------------
# tracked dict
# ---------------------------------------------------------------------------
def test_dict_put_get_remove():
    h = Holder()
    h.peers.put("a", "1")
    assert h.peers.get("a") == "1"
    assert h.peers.get("missing") is None
    assert h.peers.get("missing", "dflt") == "dflt"
    h.peers.remove("a")
    assert h.peers.get("a") is None


def test_dict_contains_values_is_empty_size():
    h = Holder()
    assert h.peers.is_empty()
    h.peers.put("a", "1")
    h.peers.put("b", "2")
    assert h.peers.contains("a")
    assert sorted(h.peers.values()) == ["1", "2"]
    assert h.peers.size() == 2
    assert len(h.peers) == 2
    h.peers.clear()
    assert h.peers.is_empty()


def test_dict_put_returns_old_value():
    h = Holder()
    assert h.peers.put("k", "1") is None
    assert h.peers.put("k", "2") == "1"


def test_dict_snapshot_is_untracked_copy():
    h = Holder()
    h.peers.put("a", "1")
    events = capture()
    snap = h.peers.snapshot()
    assert snap == {"a": "1"}
    assert events == []  # snapshot is not an access point
    snap["b"] = "2"
    assert not h.peers.contains("b")


def test_dict_ops_emit_table3_method_names():
    h = Holder()
    events = capture()
    h.peers.put("k", "v")
    h.peers.get("k")
    h.peers.contains("k")
    h.peers.values()
    h.peers.is_empty()
    h.peers.remove("k")
    h.peers.clear()
    assert [(e.op, e.method) for e in events] == [
        ("write", "put"), ("read", "get"), ("read", "contains"),
        ("read", "values"), ("read", "is_empty"),
        ("write", "remove"), ("write", "clear"),
    ]


def test_dict_size_is_not_an_access_point():
    h = Holder()
    events = capture()
    h.peers.size()
    assert events == []


def test_dict_get_emits_key_and_current_mapping():
    h = Holder()
    h.peers.put("k", "v")
    events = capture()
    h.peers.get("k")
    assert events[-1].values == ("k", "v")


def test_dict_read_reloads_after_hooks():
    h = Holder()
    h.peers.put("k", "old")

    def hook(event):
        if event.method == "get":
            h.peers._data.pop("k", None)  # recovery removes the entry

    BUS.add_hook(hook)
    assert h.peers.get("k") is None  # the read observes the removal


def test_collection_field_cannot_be_reassigned():
    h = Holder()
    with pytest.raises(TypeError):
        h.peers = {}


def test_collection_instances_independent():
    a, b = Holder(), Holder()
    a.peers.put("x", "1")
    assert b.peers.is_empty()


# ---------------------------------------------------------------------------
# tracked set / list
# ---------------------------------------------------------------------------
def test_set_ops():
    h = Holder()
    h.tags.add("a")
    assert h.tags.contains("a")
    assert not h.tags.is_empty()
    assert h.tags.values() == ["a"]
    assert h.tags.remove("a")
    assert not h.tags.remove("a")  # already gone
    h.tags.add("b")
    h.tags.clear()
    assert h.tags.size() == 0


def test_list_ops():
    h = Holder()
    h.items.add("a")
    h.items.add("b")
    assert h.items.get(0) == "a"
    assert h.items.contains("b")
    assert h.items.values() == ["a", "b"]
    assert h.items.remove("a")
    assert not h.items.remove("zz")
    assert not h.items.is_empty()
    h.items.clear()
    assert h.items.size() == 0


def test_values_stringified_and_none_filtered():
    h = Holder()
    events = capture()
    h.peers.put(NodeId("node1", 42349), None)
    assert events[-1].values == ("node1:42349",)


# ---------------------------------------------------------------------------
# the bus
# ---------------------------------------------------------------------------
def test_bus_disabled_when_no_hooks():
    assert not BUS.enabled
    h = Holder()
    h.name = "quiet"  # must not raise or record anything


def test_bus_hook_removal_disables():
    events = capture()
    BUS.remove_hook(events.append)
    assert not BUS.enabled


def test_stack_capture_off_by_default():
    h = Holder()
    events = capture()
    h.name = "v"
    assert events[-1].stack == ()


def test_stack_capture_bounded_and_innermost_first():
    h = Holder()
    events = capture()
    BUS.capture_stacks = True

    def inner():
        h.name = "deep"

    def outer():
        inner()

    outer()
    stack = events[-1].stack
    assert 0 < len(stack) <= BUS.STACK_DEPTH
    assert "inner" in stack[0]
    assert "outer" in stack[1]
    assert all(":" in frame for frame in stack)  # every frame carries a line


def test_node_attribution_inside_cluster():
    class StatefulNode(Node):
        role = "w"
        exception_policy = "log"
        data: Dict[str, str] = tracked_dict()

        def on_store(self, src, k, v):
            self.data.put(k, v)

    c = Cluster("t")
    with c:
        a = StatefulNode(c, "a")
        b = StatefulNode(c, "b")
        c.start_all()
        events = capture()
        a.send("b", "store", k="k", v="v")
        c.run()
    writers = [e.node for e in events if e.method == "put"]
    assert writers == ["b"]
