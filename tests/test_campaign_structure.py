"""Tests for campaign result structures and analysis facade helpers."""

from repro.bugs import matcher_for_system
from repro.core.analysis import analysis_modules, analyze_system, cluster_hosts
from repro.core.injection import run_campaign
from repro.systems import get_system, run_workload
from tests.conftest import prepared


def test_analysis_modules_include_shared_id_records():
    names = [s.name for s in analysis_modules(get_system("cassandra"))]
    assert "repro.cluster.ids" in names
    assert "repro.systems.cassandra.node" in names


def test_cluster_hosts_exclude_clients():
    report = run_workload(get_system("hdfs"))
    hosts = cluster_hosts(report)
    assert "client" not in hosts
    assert "nn" in hosts and "node1" in hosts


def test_analysis_report_totals_consistency():
    _, analysis, _, _ = prepared("hbase")
    totals = analysis.totals()
    assert totals["meta_types"] <= totals["types"]
    assert totals["meta_fields"] <= totals["fields"]
    assert totals["meta_access_points"] <= totals["access_points"]
    assert totals["static_crash_points"] <= totals["meta_access_points"]
    assert analysis.timings["run"] > 0


def test_campaign_result_shape_and_dedup():
    system, analysis, profile, baseline = prepared("cassandra")
    result = run_campaign(system, analysis, profile.dynamic_points,
                          baseline=baseline, matcher=matcher_for_system("cassandra"))
    assert result.system == "cassandra"
    assert len(result.outcomes) == len(profile.dynamic_points)
    assert result.sim_seconds > 0
    detected = result.detected_bugs()
    for bug_id, outcomes in detected.items():
        assert all(bug_id in o.matched_bugs for o in outcomes)
    assert set(o.dpoint.key() for o in result.flagged()) <= {
        o.dpoint.key() for o in result.outcomes
    }


def test_campaign_is_deterministic():
    system, analysis, profile, baseline = prepared("cassandra")
    a = run_campaign(system, analysis, profile.dynamic_points,
                     baseline=baseline, matcher=matcher_for_system("cassandra"))
    b = run_campaign(system, analysis, profile.dynamic_points,
                     baseline=baseline, matcher=matcher_for_system("cassandra"))
    assert [(o.fired, tuple(o.matched_bugs), o.verdict.kinds())
            for o in a.outcomes] == \
        [(o.fired, tuple(o.matched_bugs), o.verdict.kinds()) for o in b.outcomes]


def test_unfired_outcomes_are_never_flagged_by_injection():
    system, analysis, profile, baseline = prepared("zookeeper")
    result = run_campaign(system, analysis, profile.dynamic_points,
                          baseline=baseline,
                          matcher=matcher_for_system("zookeeper"))
    for outcome in result.outcomes:
        if not outcome.fired:
            assert outcome.injection is None


def test_baseline_mean_duration_positive():
    _, _, _, baseline = prepared("kube")
    assert baseline.mean_duration > 0
    assert baseline.runs == 5
