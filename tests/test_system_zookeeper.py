"""Integration tests for the miniature ZooKeeper ensemble."""

from repro.systems import get_system, run_workload
from repro.systems.zookeeper.server import ZKServer
from tests.conftest import prepared


def run_zk(seed=0, config=None, before_run=None, deadline=None):
    return run_workload(get_system("zookeeper"), seed=seed, config=config,
                        before_run=before_run, deadline=deadline)


def test_clean_smoketest_succeeds():
    report = run_zk()
    assert report.succeeded
    assert report.log.errors() == []


def test_lowest_sid_leads():
    report = run_zk()
    servers = [report.cluster.nodes[f"zk{i}"] for i in (1, 2, 3)]
    assert all(s.leader_sid == 1 for s in servers)
    assert servers[0].is_leader()


def test_writes_replicated_to_followers():
    report = run_zk()
    # every smoke znode was deleted at the end; write a fresh one
    cluster = report.cluster
    with cluster:
        cluster.nodes["client"].send("zk2", "zk_create", path="/x", data="v")
        cluster.run(until=cluster.loop.now + 1.0)
        for name in ("zk1", "zk2", "zk3"):
            record = cluster.nodes[name].znodes.get("/x")
            assert record is not None and record.data == "v"


def test_leader_crash_triggers_reelection_and_service_continues():
    report = run_zk(
        seed=1,
        before_run=lambda c, w: c.loop.schedule(0.25, lambda: c.crash("zk1")),
        deadline=60.0,
    )
    assert report.succeeded
    assert any("now LEADING (leader is 2)" in r.message for r in report.log.records)


def test_follower_crash_tolerated():
    report = run_zk(
        seed=1,
        before_run=lambda c, w: c.loop.schedule(0.25, lambda: c.crash("zk3")),
        deadline=60.0,
    )
    assert report.succeeded


def test_session_expiry_deletes_ephemerals():
    report = run_zk()
    cluster = report.cluster
    with cluster:
        client = cluster.nodes["client"]
        client.send("zk1", "create_session")
        cluster.run(until=cluster.loop.now + 0.5)
        zk1: ZKServer = cluster.nodes["zk1"]
        session_id = next(iter(zk1.sessions.snapshot()))
        client.send("zk1", "zk_create", path="/eph", data="d",
                    session_id=session_id, ephemeral=True)
        cluster.run(until=cluster.loop.now + 0.5)
        assert zk1.znodes.contains("/eph")
        # stop pinging: the session expires and the ephemeral goes away
        cluster.run(until=cluster.loop.now + 5.0)
        assert not zk1.znodes.contains("/eph")


def test_watches_fire_on_delete():
    report = run_zk()
    cluster = report.cluster
    with cluster:
        client = cluster.nodes["client"]
        events = []
        client.on_zk_event = lambda src, path, event, data: events.append((path, event))
        client.send("zk1", "zk_watch", prefix="/w/")
        client.send("zk1", "zk_create", path="/w/a", data="1")
        client.send("zk1", "zk_delete", path="/w/a")
        cluster.run(until=cluster.loop.now + 1.0)
        assert ("/w/a", "created") in events
        assert ("/w/a", "deleted") in events


def test_txn_log_replay_on_restart_semantics():
    # The transaction log is written on create; a fresh server replaying it
    # reconstructs the znodes (tested at the store level).
    report = run_zk()
    zk1 = report.cluster.nodes["zk1"]
    logged = [op for op in zk1.disk.files["/zk/version-2/log.1"] if op[0] == "create"]
    assert logged  # smoke creates went through the leader's log


def test_paper_negative_result_few_meta_info_types():
    """Section 3.4: ZooKeeper's sparse, Integer-typed logging yields very
    few meta-info variables — the paper found no new bugs here."""
    _, analysis, profile, _ = prepared("zookeeper")
    assert analysis.totals()["meta_types"] <= 3
    assert len(profile.dynamic_points) <= 5


def test_zookeeper_campaign_finds_no_new_bugs():
    from repro.bugs import matcher_for_system
    from repro.core.injection import run_campaign

    system, analysis, profile, baseline = prepared("zookeeper")
    result = run_campaign(system, analysis, profile.dynamic_points,
                          baseline=baseline, matcher=matcher_for_system("zookeeper"))
    assert result.detected_bugs() == {}
