"""Scale-kernel behaviour: batching, tombstone compaction, the tail path.

The 100x world (see DESIGN.md "Scale kernel") reshaped ``SimLoop``'s
pending-event storage into three structures — monotonic tail, out-of-order
heap, same-instant dispatch batch — plus lazy tombstone purging with
threshold compaction.  These tests pin the behaviours that reshaping must
not change (total (time, seq) order, cancel/checkpoint/pump semantics at
every structure boundary) and the new guarantees it adds (tombstones are
actually dropped, the batch never leaks across drives).
"""

import pytest

from repro.errors import SimulationError
from repro.sim.loop import SimLoop


def test_interleaved_tail_and_heap_schedules_fire_in_time_seq_order():
    loop = SimLoop()
    fired = []
    # monotonic appends (tail), then earlier times (heap), interleaved
    times = [5.0, 5.0, 7.0, 2.0, 9.0, 1.0, 9.0, 3.0, 2.0]
    for i, t in enumerate(times):
        loop.schedule_at(t, (lambda i=i, t=t: fired.append((t, i))))
    loop.run()
    assert fired == sorted(fired, key=lambda item: (item[0], item[1]))
    assert len(fired) == len(times)
    assert loop.pending() == 0


def test_same_instant_run_dispatches_in_schedule_order_with_midfire_inserts():
    loop = SimLoop()
    fired = []

    def first():
        fired.append("first")
        # same-instant event scheduled while the batch is firing: it must
        # run after the already-popped batch members (higher seq)
        loop.schedule(0.0, lambda: fired.append("late"))

    loop.schedule_at(1.0, first)
    loop.schedule_at(1.0, lambda: fired.append("second"))
    loop.schedule_at(1.0, lambda: fired.append("third"))
    loop.run()
    assert fired == ["first", "second", "third", "late"]


def test_cancelling_a_batched_event_midfire_prevents_it():
    loop = SimLoop()
    fired = []
    victim = {}

    def first():
        fired.append("first")
        victim["e"].cancel()

    loop.schedule_at(1.0, first)
    victim["e"] = loop.schedule_at(1.0, lambda: fired.append("victim"))
    loop.schedule_at(1.0, lambda: fired.append("third"))
    loop.run()
    assert fired == ["first", "third"]


def test_deadline_break_does_not_strand_future_events_in_the_batch():
    # regression: a refill can pop an event beyond `until`; it must be
    # flushed back so later, earlier schedules still precede it
    loop = SimLoop()
    fired = []
    loop.schedule_at(1.0, lambda: fired.append("a"))
    loop.schedule_at(2.0, lambda: fired.append("b"))
    loop.run(until=1.0)
    assert fired == ["a"] and loop.now == 1.0
    loop.schedule_at(1.5, lambda: fired.append("between"))
    loop.run()
    assert fired == ["a", "between", "b"]


def test_pump_inside_batch_delivers_remaining_batch_members():
    loop = SimLoop()
    fired = []

    def first():
        fired.append("first")
        loop.schedule(0.5, lambda: fired.append("pumped"))
        loop.pump(1.0)
        fired.append("resumed")

    loop.schedule_at(1.0, first)
    loop.schedule_at(1.0, lambda: fired.append("second"))
    loop.run()
    # the same-instant sibling falls inside the pump window (<= deadline)
    assert fired == ["first", "second", "pumped", "resumed"]


def test_pump_deadline_flushes_unfired_members_for_the_outer_run():
    loop = SimLoop()
    fired = []

    def first():
        fired.append("first")
        loop.pump(0.0)  # zero-width pump: siblings at t=1.0 still fire
        fired.append("resumed")

    loop.schedule_at(1.0, first)
    loop.schedule_at(1.0, lambda: fired.append("second"))
    loop.run()
    assert fired == ["first", "second", "resumed"]


def test_tombstones_are_compacted_past_the_threshold():
    loop = SimLoop()
    keep = [loop.schedule_at(10.0 + i, lambda: None) for i in range(8)]
    victims = [loop.schedule_at(20.0 + i, lambda: None)
               for i in range(4 * SimLoop.COMPACT_MIN)]
    for v in victims:
        v.cancel()
    # compaction ran: almost all dead events are physically gone — at most
    # a sub-threshold straggler tail may still sit tombstoned in place
    assert len(loop._queue) + len(loop._tail) <= len(keep) + SimLoop.COMPACT_MIN
    assert loop._tombstones <= SimLoop.COMPACT_MIN
    assert loop.pending() == len(keep)
    loop.run()
    assert loop.pending() == 0


def test_cancel_owned_by_compacts_and_counts_once():
    loop = SimLoop()
    n = 4 * SimLoop.COMPACT_MIN
    for i in range(n):
        loop.schedule_at(5.0 + i, lambda: None, owner="doomed")
    survivor = loop.schedule_at(1.0, lambda: None, owner="fine")
    assert loop.cancel_owned_by("doomed") == n
    assert loop.cancel_owned_by("doomed") == 0  # idempotent
    assert loop.pending() == 1
    assert len(loop._queue) + len(loop._tail) == 1
    assert not survivor.cancelled


def test_cancel_after_fire_does_not_skew_tombstone_count():
    loop = SimLoop()
    events = []
    for i in range(5):
        events.append(loop.schedule_at(float(i), lambda: None))
    loop.run()
    for e in events:
        e.cancel()  # already fired: must not count as queued tombstones
    assert loop._tombstones == 0


def test_seed_scale_never_compacts():
    # seed-sized runs stay below COMPACT_MIN, so dispatch order is
    # trivially identical to the pre-compaction kernel
    loop = SimLoop()
    victims = [loop.schedule_at(5.0, lambda: None) for i in range(64)]
    for v in victims:
        v.cancel()
    assert loop._tombstones == len(victims)  # still tombstoned in place


def test_checkpoint_spans_batch_tail_and_heap():
    loop = SimLoop()
    fired = []
    taken = {}

    def first():
        fired.append("first")
        loop.schedule(3.0, lambda: fired.append("later"))  # tail
        loop.schedule_at(loop.now + 0.5, lambda: fired.append("soon"))
        taken["cp"] = loop.checkpoint()

    loop.schedule_at(1.0, first)
    loop.schedule_at(1.0, lambda: fired.append("second"))  # batched sibling
    loop.run()
    assert fired == ["first", "second", "soon", "later"]
    cp = taken["cp"]
    # the mid-handler checkpoint saw the un-fired batch sibling plus both
    # new schedules
    assert cp.pending() == 3
    loop.restore(cp)
    fired.clear()
    loop.run()
    assert fired == ["second", "soon", "later"]
    # a checkpoint survives any number of restores
    loop.restore(cp)
    fired.clear()
    loop.run()
    assert fired == ["second", "soon", "later"]


def test_restore_recounts_tombstones():
    loop = SimLoop()
    live = loop.schedule_at(2.0, lambda: None)
    dead = loop.schedule_at(3.0, lambda: None)
    dead.cancel()
    cp = loop.checkpoint()
    other = SimLoop()
    other.restore(cp)
    assert other._tombstones == 1
    assert other.pending() == 1


def test_schedule_past_still_rejected_and_negative_delay():
    loop = SimLoop()
    loop.schedule_at(5.0, lambda: None)
    loop.run()
    with pytest.raises(SimulationError):
        loop.schedule_at(1.0, lambda: None)
    with pytest.raises(SimulationError):
        loop.schedule(-0.1, lambda: None)


def test_heavy_same_instant_burst_is_ordered():
    # a 100x-style t=0 burst: thousands of same-instant events dispatch as
    # one batch, in seq order, interleaved with a later tail
    loop = SimLoop()
    fired = []
    n = 5000
    for i in range(n):
        loop.schedule_at(0.0, (lambda i=i: fired.append(i)))
    loop.schedule_at(1.0, lambda: fired.append("tail"))
    loop.run()
    assert fired[:n] == list(range(n))
    assert fired[-1] == "tail"


def test_event_clone_is_detached_from_the_loop():
    loop = SimLoop()
    e = loop.schedule_at(1.0, lambda: None)
    c = e.clone()
    assert c._loop is None and not c._in_loop
    c.cancel()  # cancelling a detached clone must not touch loop accounting
    assert loop._tombstones == 0
    assert loop.pending() == 1
    assert not e.cancelled
