"""Failure-mode analytics: featurizer, clustering, dedup, novelty scheduling.

Covers the acceptance criteria: dedup groups every detection of each
seeded bug into one canonical detection (pinned against the bug catalog),
``point_order="novelty"`` reaches the first detection in strictly fewer
injections than point order on the seeded yarn campaign, the analytics
pass is byte-deterministic, and enabling it leaves the default campaign
outputs untouched.
"""

import json

import pytest

from repro.bugs import matcher_for_system, seeded_bugs
from repro.core.injection import CampaignConfig, JournalMismatch, run_campaign
from repro.obs import Observability, read_trace_jsonl, write_trace_jsonl
from repro.obs.analytics import (
    analyze_diagnoses,
    analyze_trace,
    cluster_modes,
    main as analytics_main,
    novelty_order,
    observed_from_analytics,
    order_points,
)
from repro.obs.features import (
    featurize,
    jaccard_distance,
    point_tokens,
    static_only,
    static_tokens,
)
from tests.conftest import prepared

_CACHE = {}


def full_campaign(name, point_order="point"):
    """One full traced campaign per (system, order), cached for the session."""
    key = (name, point_order)
    if key not in _CACHE:
        system, analysis, profile, baseline = prepared(name)
        obs = Observability()
        result = run_campaign(
            system, analysis, profile.dynamic_points, baseline=baseline,
            campaign=CampaignConfig(point_order=point_order, analytics=True),
            matcher=matcher_for_system(name), obs=obs,
        )
        _CACHE[key] = (obs, result)
    return _CACHE[key]


def _run(name, **knobs):
    system, analysis, profile, baseline = prepared(name)
    return run_campaign(
        system, analysis, profile.dynamic_points, baseline=baseline,
        campaign=CampaignConfig(**knobs), matcher=matcher_for_system(name),
    )


# ----------------------------------------------------------------------
# featurizer
# ----------------------------------------------------------------------
def test_static_tokens_identical_from_point_and_diagnosis():
    # the contract putting pending points and finished injections in one
    # feature space: point_tokens (pre-run) == static_tokens (post-run)
    obs, result = full_campaign("yarn")
    assert len(obs.diagnoses) == len(result.outcomes)
    for outcome, diagnosis in zip(result.outcomes, obs.diagnoses):
        assert point_tokens(outcome.dpoint) == static_tokens(diagnosis)


def test_featurize_tokens_are_static_plus_dynamic():
    obs, result = full_campaign("yarn")
    features, span_features = featurize(obs.diagnoses, spans=obs.tracer.spans)
    assert span_features
    for feat, diagnosis in zip(features, obs.diagnoses):
        assert static_only(feat.tokens) == static_tokens(diagnosis)
        assert f"outcome:{diagnosis.outcome()}" in feat.tokens
        for bug in diagnosis.matched_bugs:
            assert f"bug:{bug}" in feat.tokens
        if span_features:
            assert any(t.startswith("span:") for t in feat.tokens)


def test_span_features_dropped_when_unattributable():
    obs, _ = full_campaign("yarn")
    # hand the featurizer a span set that cannot add up (no spans at all,
    # then a truncated one): it must degrade, not misattribute
    _, ok = featurize(obs.diagnoses, spans=None)
    assert not ok
    _, ok = featurize(obs.diagnoses, spans=obs.tracer.spans[: len(obs.tracer.spans) // 2])
    assert not ok


def test_jaccard_distance_bounds():
    a = frozenset({"x", "y"})
    assert jaccard_distance(a, a) == 0.0
    assert jaccard_distance(a, frozenset()) == 1.0
    assert jaccard_distance(frozenset(), frozenset()) == 0.0


# ----------------------------------------------------------------------
# clustering
# ----------------------------------------------------------------------
def test_cluster_modes_partition_and_threshold_extremes():
    obs, result = full_campaign("yarn")
    rep = result.analytics
    assert rep is not None
    covered = sorted(i for m in rep.modes for i in m.members)
    assert covered == list(range(len(obs.diagnoses)))
    for mode in rep.modes:
        assert mode.medoid in mode.members
        assert mode.members == sorted(mode.members)

    features, _ = featurize(obs.diagnoses, spans=obs.tracer.spans)
    singletons = cluster_modes(features, obs.diagnoses, threshold=-1.0)
    assert len(singletons) == len(obs.diagnoses)
    merged = cluster_modes(features, obs.diagnoses, threshold=1.0)
    assert len(merged) == 1


def test_analytics_json_is_byte_deterministic(tmp_path):
    obs, result = full_campaign("yarn")
    path = write_trace_jsonl(tmp_path / "yarn.jsonl", obs=obs)
    once = analyze_trace(read_trace_jsonl(path)).to_json()
    again = analyze_trace(read_trace_jsonl(path)).to_json()
    assert once == again
    # and the in-process report (computed from live objects) agrees
    assert result.analytics.to_json() == once


# ----------------------------------------------------------------------
# detection dedup (pinned against the bug catalog)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["yarn", "hbase"])
def test_dedup_collapses_every_seeded_bug(name):
    obs, result = full_campaign(name)
    rep = result.analytics
    raw = {}
    for i, diagnosis in enumerate(obs.diagnoses):
        for bug in diagnosis.matched_bugs:
            raw.setdefault(bug, []).append(i)
    assert raw, f"the seeded {name} campaign must detect bugs"
    # one canonical detection per bug, carrying every detecting index
    assert {c.bug for c in rep.dedup} == set(raw)
    catalog = {b.id for b in seeded_bugs(name)}
    assert set(raw) <= catalog
    for canonical in rep.dedup:
        assert canonical.members == raw[canonical.bug]
        assert canonical.canonical == min(raw[canonical.bug])
        assert canonical.point == obs.diagnoses[canonical.canonical].point
        assert canonical.modes  # every member sits in some mode
    # ordered by first detection
    firsts = [c.canonical for c in rep.dedup]
    assert firsts == sorted(firsts)


# ----------------------------------------------------------------------
# novelty-first scheduling
# ----------------------------------------------------------------------
def test_novelty_order_is_deterministic_permutation():
    sets = [frozenset({"a"}), frozenset({"a", "b"}), frozenset({"c"}),
            frozenset({"c", "d"}), frozenset({"a"})]
    order = novelty_order(sets)
    assert sorted(order) == list(range(len(sets)))
    assert order == novelty_order(sets)
    assert novelty_order([]) == []
    assert novelty_order([frozenset({"x"})]) == [0]


def test_novelty_order_starts_far_from_observed():
    sets = [frozenset({"a", "b"}), frozenset({"c", "d"})]
    # with {a,b} already observed, the first pick must be the c/d point
    assert novelty_order(sets, observed=[frozenset({"a", "b"})])[0] == 1


def test_novelty_reaches_first_detection_sooner_on_yarn():
    _, by_point = full_campaign("yarn")
    _, by_novelty = full_campaign("yarn", point_order="novelty")
    assert by_point.point_order == "point"
    assert by_novelty.point_order == "novelty"
    first_point = by_point.first_detection()
    first_novelty = by_novelty.first_detection()
    assert first_point is not None and first_novelty is not None
    # the acceptance criterion: strictly fewer injections to first detection
    assert first_novelty < first_point
    # same points, same bugs — only the order changed
    assert by_novelty.detected_bugs().keys() == by_point.detected_bugs().keys()
    assert {o.dpoint.key() for o in by_novelty.outcomes} == \
        {o.dpoint.key() for o in by_point.outcomes}


def test_novelty_order_applies_before_max_points_cap():
    capped = _run("yarn", point_order="novelty", max_points=6)
    _, full = full_campaign("yarn", point_order="novelty")
    assert [o.dpoint.key() for o in capped.outcomes] == \
        [o.dpoint.key() for o in full.outcomes[:6]]


def test_order_points_consumes_prior_analytics(tmp_path):
    system, analysis, profile, baseline = prepared("yarn")
    points = list(profile.dynamic_points)
    _, result = full_campaign("yarn")
    dump = tmp_path / "analytics.json"
    dump.write_text(result.analytics.to_json() + "\n")

    seeded = order_points(points, analytics_path=dump)
    assert sorted(p.key() for p in seeded) == sorted(p.key() for p in points)
    observed = observed_from_analytics(json.loads(dump.read_text()))
    assert observed
    # the first scheduled point maximizes the min distance to the
    # observed mode medoids (the feedback loop's defining property)
    token_sets = [static_only(point_tokens(p)) for p in points]
    floors = [min(jaccard_distance(t, o) for o in observed) for t in token_sets]
    first = seeded[0]
    assert floors[[p.key() for p in points].index(first.key())] == max(floors)

    via_cfg = _run("yarn", point_order="novelty", max_points=4,
                   analytics_path=str(dump))
    assert [o.dpoint.key() for o in via_cfg.outcomes] == \
        [p.key() for p in seeded[:4]]


def test_novelty_campaign_journal_pins_order(tmp_path):
    journal = tmp_path / "journal.jsonl"
    first = _run("yarn", point_order="novelty", max_points=5,
                 journal_path=str(journal))
    resumed = _run("yarn", point_order="novelty", max_points=5,
                   journal_path=str(journal))
    assert [o.dpoint.key() for o in resumed.outcomes] == \
        [o.dpoint.key() for o in first.outcomes]
    assert [o.matched_bugs for o in resumed.outcomes] == \
        [o.matched_bugs for o in first.outcomes]
    # a journal written under one order must refuse another
    with pytest.raises(JournalMismatch):
        _run("yarn", max_points=5, journal_path=str(journal))


def test_point_order_is_validated():
    with pytest.raises(ValueError, match="point_order"):
        CampaignConfig(point_order="random")


# ----------------------------------------------------------------------
# default outputs are untouched by analytics
# ----------------------------------------------------------------------
def test_analytics_flag_leaves_campaign_outputs_identical(tmp_path):
    plain = _run("yarn", max_points=12)
    analyzed = _run("yarn", max_points=12, analytics=True)
    assert plain.analytics is None
    assert analyzed.analytics is not None
    assert [o.dpoint.key() for o in plain.outcomes] == \
        [o.dpoint.key() for o in analyzed.outcomes]
    a = write_trace_jsonl(tmp_path / "plain.jsonl",
                          diagnoses=[o.diagnosis for o in plain.outcomes])
    b = write_trace_jsonl(tmp_path / "analyzed.jsonl",
                          diagnoses=[o.diagnosis for o in analyzed.outcomes])
    assert a.read_bytes() == b.read_bytes()


# ----------------------------------------------------------------------
# the CLI
# ----------------------------------------------------------------------
def _trace_path(tmp_path):
    obs, _ = full_campaign("yarn")
    return str(write_trace_jsonl(tmp_path / "yarn.jsonl", obs=obs,
                                 meta={"system": "yarn"}))


def test_cli_modes_dedup_rank(tmp_path, capsys):
    trace = _trace_path(tmp_path)
    assert analytics_main(["modes", trace]) == 0
    out = capsys.readouterr().out
    assert "Failure modes" in out and "span features on" in out

    assert analytics_main(["dedup", trace]) == 0
    out = capsys.readouterr().out
    assert "Canonical detections" in out

    assert analytics_main(["rank", trace, "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "Anomaly ranking" in out
    assert out.count("\n") < 10


def test_cli_modes_json_and_diff(tmp_path, capsys):
    trace = _trace_path(tmp_path)
    dump = tmp_path / "modes.json"
    assert analytics_main(["modes", trace, "--json", str(dump)]) == 0
    capsys.readouterr()
    payload = json.loads(dump.read_text())
    assert payload["injections"] > 0 and payload["modes"]

    # --json - twice: byte-identical (the determinism contract's surface)
    assert analytics_main(["modes", trace, "--json", "-"]) == 0
    first = capsys.readouterr().out
    assert analytics_main(["modes", trace, "--json", "-"]) == 0
    assert capsys.readouterr().out == first

    # diffing a dump against its own trace reports no changes
    assert analytics_main(["modes", trace, "--diff", str(dump)]) == 0
    out = capsys.readouterr().out
    assert "+0 / -0 / 0 resized" in out

    # a coarser threshold shows up as mode churn
    assert analytics_main(["modes", trace, "--threshold", "1.0",
                           "--diff", str(dump)]) == 0
    out = capsys.readouterr().out
    assert "+0 / -0 / 0 resized" not in out


def test_cli_errors_cleanly(tmp_path, capsys):
    assert analytics_main(["modes", str(tmp_path / "missing.jsonl")]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:") and "Traceback" not in err

    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"type": "meta"}\n{"type": "mystery"}\n{"type": "meta"}\n')
    assert analytics_main(["rank", str(bad)]) == 1
    assert capsys.readouterr().err.startswith("error:")


def test_analyze_diagnoses_empty_trace():
    rep = analyze_diagnoses([])
    assert rep.injections == 0
    assert rep.modes == [] and rep.dedup == [] and rep.ranking == []
    assert json.loads(rep.to_json())["modes"] == []
