"""Unit tests for the network and node lifecycle layers."""

from typing import Dict

import pytest

from repro.cluster import Cluster, Node, NodeState, tracked_dict
from repro.mtlog import get_logger

LOG = get_logger("tests.netnodes")


class Echo(Node):
    role = "echo"
    exception_policy = "log"

    def __init__(self, cluster, name, **kw):
        super().__init__(cluster, name, **kw)
        self.received = []

    def on_ping(self, src, tag):
        self.received.append((src, tag))

    def on_boom(self, src):
        raise ValueError("boom")


class FragileMaster(Echo):
    role = "master"
    critical = True
    exception_policy = "abort"


def make_cluster(seed=0, config=None):
    return Cluster("t", seed=seed, config=config)


def test_message_delivered_with_latency():
    c = make_cluster()
    with c:
        a = Echo(c, "a")
        b = Echo(c, "b")
        c.start_all()
        a.send("b", "ping", tag=1)
        c.run()
        assert b.received == [("a", 1)]
        assert c.loop.now > 0


def test_per_channel_fifo_ordering():
    c = make_cluster(seed=5)
    with c:
        a = Echo(c, "a")
        b = Echo(c, "b")
        c.start_all()
        for i in range(20):
            a.send("b", "ping", tag=i)
        c.run()
        assert [t for (_, t) in b.received] == list(range(20))


def test_messages_to_dead_node_dropped():
    c = make_cluster()
    with c:
        a = Echo(c, "a")
        b = Echo(c, "b")
        c.start_all()
        c.crash("b")
        a.send("b", "ping", tag=1)
        c.run()
        assert b.received == []
        assert ("b", "ping") in c.network.dropped


def test_in_flight_message_from_crashed_sender_still_delivered():
    c = make_cluster()
    with c:
        a = Echo(c, "a")
        b = Echo(c, "b")
        c.start_all()
        a.send("b", "ping", tag=1)
        c.crash("a")  # packet already left the machine
        c.run()
        assert b.received == [("a", 1)]


def test_broadcast_reaches_all():
    c = make_cluster()
    with c:
        a = Echo(c, "a")
        b = Echo(c, "b")
        d = Echo(c, "d")
        c.start_all()
        c.network.broadcast("a", ["b", "d"], "ping", tag=9)
        c.run()
        assert b.received == [("a", 9)]
        assert d.received == [("a", 9)]


def test_unknown_handler_logs_warning():
    c = make_cluster()
    with c:
        a = Echo(c, "a")
        b = Echo(c, "b")
        c.start_all()
        a.send("b", "no_such_method")
        c.run()
        assert any("No handler" in r.message for r in c.log_collector.records)


def test_node_lifecycle_states():
    c = make_cluster()
    with c:
        a = Echo(c, "a")
        assert a.state is NodeState.NEW
        a.start()
        assert a.state is NodeState.RUNNING
        a.begin_shutdown()
        assert a.state is NodeState.SHUTTING_DOWN
        c.run()
        assert a.state is NodeState.STOPPED


def test_crash_is_abrupt_and_cancels_timers():
    c = make_cluster()
    with c:
        a = Echo(c, "a")
        fired = []
        a.start()
        a.set_timer(1.0, lambda: fired.append(1))
        a.crash()
        c.run()
        assert a.state is NodeState.CRASHED
        assert fired == []
        assert c.crashes and c.crashes[0][1] == "a"


def test_graceful_shutdown_recorded():
    c = make_cluster()
    with c:
        a = Echo(c, "a")
        a.start()
        c.shutdown("a")
        c.run()
        assert [n for _, n in c.shutdowns] == ["a"]


def test_periodic_timer_reschedules_until_death():
    c = make_cluster()
    with c:
        a = Echo(c, "a")
        a.start()
        ticks = []
        a.set_timer(1.0, lambda: ticks.append(c.loop.now), periodic=1.0)
        c.run(until=3.5)
        a.crash()
        c.run(until=10.0)
        assert len(ticks) == 3


def test_worker_exception_policy_logs_and_survives():
    c = make_cluster()
    with c:
        a = Echo(c, "a")
        b = Echo(c, "b")
        c.start_all()
        a.send("b", "boom")
        c.run()
        assert b.state is NodeState.RUNNING
        assert c.aborts == []
        assert any(r.level == "error" for r in c.log_collector.records)


def test_master_exception_policy_aborts_process():
    c = make_cluster()
    with c:
        a = Echo(c, "a")
        m = FragileMaster(c, "m")
        c.start_all()
        a.send("m", "boom")
        c.run()
        assert m.state is NodeState.ABORTED
        assert len(c.aborts) == 1
        assert c.critical_aborts()


def test_dead_node_ignores_messages_and_timers():
    c = make_cluster()
    with c:
        a = Echo(c, "a")
        b = Echo(c, "b")
        c.start_all()
        b.crash()
        a.send("b", "ping", tag=1)
        c.run()
        assert b.received == []


def test_host_level_crash_kills_colocated_processes():
    c = make_cluster()
    with c:
        nm = Echo(c, "node1")
        am = Echo(c, "am-1", host="node1", port=43001)
        other = Echo(c, "node2")
        c.start_all()
        killed = c.crash_host("node1")
        assert sorted(killed) == ["am-1", "node1"]
        assert nm.is_dead() and am.is_dead()
        assert other.is_running()


def test_host_level_shutdown_graceful():
    c = make_cluster()
    with c:
        nm = Echo(c, "node1")
        am = Echo(c, "am-1", host="node1", port=43001)
        c.start_all()
        stopped = c.shutdown_host("node1")
        c.run()
        assert sorted(stopped) == ["am-1", "node1"]
        assert nm.state is NodeState.STOPPED
        assert am.state is NodeState.STOPPED


def test_node_by_address_resolves_host_port_and_bare_host():
    c = make_cluster()
    with c:
        a = Echo(c, "a", port=1234)
        assert c.node_by_address("a:1234") is a
        assert c.node_by_address("a") is a
        assert c.node_by_address("zzz") is None


def test_duplicate_node_name_rejected():
    c = make_cluster()
    with c:
        Echo(c, "a")
        with pytest.raises(Exception):
            Echo(c, "a")


def test_is_patched_switchboard():
    c = make_cluster(config={"patched_bugs": {"BUG-1"}})
    assert c.is_patched("BUG-1")
    assert not c.is_patched("BUG-2")
    assert Cluster("x", config={"patched_bugs": "all"}).is_patched("ANY")
    assert not Cluster("y").is_patched("BUG-1")


def test_same_seed_same_simulation():
    def run_once():
        c = make_cluster(seed=11)
        with c:
            a = Echo(c, "a")
            b = Echo(c, "b")
            c.start_all()
            for i in range(10):
                a.send("b", "ping", tag=i)
            c.run()
            return c.loop.now, [t for _, t in b.received]

    assert run_once() == run_once()
