"""Spill-to-disk log collection (scale kernel, DESIGN.md "Scale kernel").

The contract under test: a collector constructed with ``spill_threshold``
is observationally identical to the in-memory collector — same records in
the same order, same oracle-helper results, same checkpoint/restore
semantics — while holding at most a bounded window of records in memory.
"""

import json
import os

import pytest

from repro.cluster.cluster import Cluster
from repro.mtlog.collector import LogCollector
from repro.mtlog.records import LogRecord
from repro.mtlog.spill import SpillingRecordStream
from repro.systems.base import run_workload
from tests.conftest import prepared


def _record(i, node="node1", level="info"):
    return LogRecord(
        time=float(i), node=node, component="comp.mod", level=level,
        template="event {} on {}", args=(str(i), node),
        location=("comp.mod", 10 + (i % 3)),
        exc="Boom: bad" if level == "error" else None,
    )


# ---------------------------------------------------------------------------
# record identity round-trips through JSONL
# ---------------------------------------------------------------------------
def test_record_round_trips_through_dict_including_lazy_message():
    original = _record(3, level="error")
    reloaded = LogRecord.from_dict(json.loads(json.dumps(original.to_dict())))
    assert reloaded == original
    assert hash(reloaded) == hash(original)
    # the rendered message is not serialized, but re-renders identically
    assert reloaded.message == original.message == "event 3 on node1"
    assert reloaded.signature() == original.signature()


# ---------------------------------------------------------------------------
# the stream itself
# ---------------------------------------------------------------------------
def test_stream_spills_and_replays_in_order(tmp_path):
    stream = SpillingRecordStream(10, str(tmp_path))
    records = [_record(i) for i in range(35)]
    for r in records:
        stream.append(r)
    # window bounded: every time it hits 10, the oldest 5 spill
    assert len(stream._window) < 10
    assert stream.spilled == 30
    assert len(stream) == 35
    assert list(stream) == records
    # random access spans both regions
    assert stream[0] == records[0]
    assert stream[17] == records[17]
    assert stream[-1] == records[-1]
    assert stream[5:25] == records[5:25]
    with pytest.raises(IndexError):
        stream[35]
    stats = stream.stats()
    assert stats["total"] == 35 and stats["spilled"] == 30
    assert stats["chunks"] == 6


def test_stream_truncate_window_chunk_boundary_and_midchunk(tmp_path):
    def build():
        s = SpillingRecordStream(10, str(tmp_path / "t"))
        for i in range(35):
            s.append(_record(i))
        return s

    records = [_record(i) for i in range(35)]
    # window-only truncation
    s = build()
    s.truncate(32)
    assert list(s) == records[:32] and s.spilled == 30
    # mid-chunk: un-spills the partial chunk back into the window
    s.truncate(13)
    assert list(s) == records[:13]
    assert s.spilled == 10 and len(s._window) == 3
    # chunk boundary exactly
    s.truncate(10)
    assert list(s) == records[:10] and s.spilled == 10
    # keep growing after a truncation — no id collisions, order preserved
    for i in range(100, 110):
        s.append(_record(i))
    assert list(s) == records[:10] + [_record(i) for i in range(100, 110)]
    # truncate to zero drops everything and unlinks this pid's files
    s.truncate(0)
    assert len(s) == 0 and list(s) == []
    own = [p for p in (tmp_path / "t").iterdir()
           if p.name.startswith(f"chunk-{os.getpid()}-")]
    assert own == []


def test_stream_rejects_degenerate_threshold():
    with pytest.raises(ValueError):
        SpillingRecordStream(1)


# ---------------------------------------------------------------------------
# collector in spill mode == collector in memory mode
# ---------------------------------------------------------------------------
def test_spilling_collector_matches_in_memory_collector(tmp_path):
    plain = LogCollector()
    spilling = LogCollector(spill_threshold=8, spill_dir=str(tmp_path))
    records = [_record(i, node=f"node{i % 3}",
                       level="error" if i % 7 == 0 else "info")
               for i in range(50)]
    for r in records:
        plain.collect(r)
        spilling.collect(r)
    assert spilling.records.spilled > 0, "the spill must actually engage"
    assert list(spilling.records) == list(plain.records) == records
    assert len(spilling) == len(plain) == 50
    # oracle helpers read through the spill transparently
    assert spilling.errors() == plain.errors()
    assert spilling.messages() == plain.messages()
    assert spilling.grep("event 13") == plain.grep("event 13")
    # per-node view: same nodes, same records on materialization
    assert sorted(spilling.by_node) == sorted(plain.by_node)
    for node in plain.by_node:
        assert spilling.by_node[node] == plain.by_node[node]
    with pytest.raises(KeyError):
        spilling.by_node["absent"]


def test_spilling_collector_checkpoint_restore(tmp_path):
    collector = LogCollector(spill_threshold=6, spill_dir=str(tmp_path))
    seen = []
    collector.subscribe(seen.append)
    for i in range(20):
        collector.collect(_record(i))
    cp = collector.checkpoint()
    late = lambda r: None  # noqa: E731
    collector.subscribe(late)
    for i in range(20, 40):
        collector.collect(_record(i))
    assert len(collector) == 40 and len(seen) == 40
    collector.restore(cp)
    assert len(collector) == 20
    assert list(collector.records) == [_record(i) for i in range(20)]
    assert collector.by_node.counts() == {"node1": 20}
    assert late not in collector._subscribers
    # the collector keeps working after restore
    collector.collect(_record(99))
    assert collector.records[-1] == _record(99)
    assert len(seen) == 41


def test_subscriber_isolation_unchanged_in_spill_mode(tmp_path):
    collector = LogCollector(spill_threshold=4, spill_dir=str(tmp_path))

    def bad(record):
        raise RuntimeError("tail fell over")

    good = []
    collector.subscribe(bad)
    collector.subscribe(good.append)
    for i in range(10):
        collector.collect(_record(i))
    assert len(good) == 10
    assert len(collector.subscriber_errors) == 10
    sub, rec, exc = collector.subscriber_errors[0]
    assert sub is bad and isinstance(exc, RuntimeError)


def test_default_collector_layout_is_unchanged():
    collector = LogCollector()
    assert type(collector.records) is list
    collector.collect(_record(0))
    assert collector.by_node["node1"] == [_record(0)]


# ---------------------------------------------------------------------------
# cluster wiring + a real workload behind the spill
# ---------------------------------------------------------------------------
def test_cluster_config_wires_the_spill(tmp_path):
    cluster = Cluster("c", seed=0, config={
        "log_spill_threshold": 32, "log_spill_dir": str(tmp_path),
    })
    assert isinstance(cluster.log_collector.records, SpillingRecordStream)
    assert type(Cluster("c2").log_collector.records) is list


def test_yarn_run_identical_with_and_without_spill(tmp_path):
    system, _analysis, _profile, _ = prepared("yarn")
    baseline = run_workload(system, seed=11)
    spilled = run_workload(system, seed=11, config={
        "log_spill_threshold": 16, "log_spill_dir": str(tmp_path),
    })
    assert spilled.log.records.spilled > 0, "the spill must actually engage"
    assert spilled.completed == baseline.completed
    assert spilled.succeeded == baseline.succeeded
    assert spilled.duration == baseline.duration
    assert list(spilled.log.records) == list(baseline.log.records)
    assert spilled.log.messages() == baseline.log.messages()
