"""Unit tests for YARN component internals (scheduler, records, commit)."""

import pytest

from repro.cluster import Cluster
from repro.cluster.ids import (
    CLUSTER_TIMESTAMP,
    ApplicationAttemptId,
    ApplicationId,
    ContainerId,
    JobId,
    NodeId,
    TaskAttemptId,
    TaskId,
)
from repro.systems.common import InvalidStateTransition, StateMachine, transitions
from repro.systems.yarn.records import (
    MRTask,
    RMApp,
    RMContainer,
    SchedulerApplicationAttempt,
    SchedulerNode,
)
from repro.systems.yarn.resourcemanager import ResourceManager
from repro.systems.yarn.system import YarnSystem
from repro.systems import run_workload


# ---------------------------------------------------------------------------
# the state machine helper
# ---------------------------------------------------------------------------
def test_state_machine_transitions():
    sm = StateMachine("e", "A", transitions(("A", "go", "B"), ("B", "back", "A")))
    assert sm.handle("go") == "B"
    assert sm.can_handle("back")
    assert not sm.can_handle("go")
    assert sm.is_in(["B", "C"])


def test_state_machine_invalid_event_names_entity_and_state():
    sm = StateMachine("container_1", "KILLED", {})
    with pytest.raises(InvalidStateTransition) as err:
        sm.handle("launched")
    assert "Invalid event: launched at KILLED for container_1" in str(err.value)


# ---------------------------------------------------------------------------
# records
# ---------------------------------------------------------------------------
def _ids():
    app = ApplicationId(CLUSTER_TIMESTAMP, 1)
    attempt = ApplicationAttemptId(app, 1)
    return app, attempt


def test_scheduler_node_slot_accounting():
    node = SchedulerNode(NodeId("node1", 42349), total_slots=2)
    _, attempt = _ids()
    c1, c2 = ContainerId(attempt, 1), ContainerId(attempt, 2)
    node.allocate(c1)
    node.allocate(c2)
    assert node.available_slots() == 0
    node.release_container(c1)
    assert node.available_slots() == 1
    node.release_container(c1)  # double release is a no-op
    assert node.available_slots() == 1


def test_rmapp_lifecycle_states():
    app, attempt = _ids()
    rmapp = RMApp(app, num_maps=2, num_reduces=1)
    rmapp.sm.handle("start")
    rmapp.sm.handle("unregister")
    rmapp.sm.handle("finalize")
    assert rmapp.sm.state == "FINISHED"
    # late NM reports after finalize are tolerated by design
    assert rmapp.sm.can_handle("nm_app_report")


def test_container_record_str_is_its_id():
    app, attempt = _ids()
    cid = ContainerId(attempt, 3)
    rmc = RMContainer(cid, NodeId("node1", 42349), attempt)
    assert str(rmc) == str(cid)
    assert rmc.sm.state == "ALLOCATED"


def test_mrtask_rerun_after_output_loss():
    app, _ = _ids()
    task = MRTask(TaskId(JobId(app), "m", 1))
    task.sm.handle("attempt_started")
    task.sm.handle("committed")
    assert task.sm.state == "SUCCEEDED"
    task.sm.handle("output_lost")
    assert task.sm.state == "SCHEDULED"  # eligible for re-run


# ---------------------------------------------------------------------------
# scheduler behaviour inside a live RM
# ---------------------------------------------------------------------------
def _live_rm():
    cluster = Cluster("t")
    cluster.activate()
    rm = ResourceManager(cluster, "rm")
    rm.start()
    return cluster, rm


def test_pick_node_balances_by_load():
    cluster, rm = _live_rm()
    try:
        for i in (1, 2):
            rm.on_register_node(f"node{i}", NodeId(f"node{i}", 42349))
        first = rm._pick_node(None)
        first.allocate(ContainerId(_ids()[1], 1))
        second = rm._pick_node(None)
        assert first.node_id != second.node_id
    finally:
        cluster.deactivate()


def test_pick_node_returns_none_when_full():
    cluster, rm = _live_rm()
    try:
        assert rm._pick_node(None) is None  # no nodes at all
        rm.on_register_node("node1", NodeId("node1", 42349))
        node = rm.get_sched_node(NodeId("node1", 42349))
        for i in range(rm.slots_per_node):
            node.allocate(ContainerId(_ids()[1], i + 1))
        assert rm._pick_node(None) is None
    finally:
        cluster.deactivate()


def test_node_removal_is_idempotent():
    cluster, rm = _live_rm()
    try:
        nid = NodeId("node1", 42349)
        rm.on_register_node("node1", nid)
        rm._handle_node_removed(nid, "LOST")
        rm._handle_node_removed(nid, "LOST")  # second removal: no-op
        assert rm.nodes.is_empty()
    finally:
        cluster.deactivate()


def test_web_request_counts_state():
    cluster, rm = _live_rm()
    try:
        rm.on_register_node("node1", NodeId("node1", 42349))
        rm.on_web_request("client")
        assert cluster.log_collector.grep("Web request: 0 applications, 1 nodes")
    finally:
        cluster.deactivate()


# ---------------------------------------------------------------------------
# end-to-end behaviours not covered elsewhere
# ---------------------------------------------------------------------------
def test_two_jobs_run_concurrently():
    from repro.systems.yarn.client import WordCountWorkload

    system = YarnSystem()

    class TwoJobs(WordCountWorkload):
        def __init__(self):
            super().__init__(jobs=2, num_maps=2, num_reduces=1)

    workload = TwoJobs()
    cluster = system.build(seed=0)
    with cluster:
        workload.install(cluster)
        cluster.start_all()
        cluster.run(until=40.0, stop_when=lambda: workload.finished(cluster))
        assert workload.succeeded(cluster)
        apps = {str(a) for a in cluster.nodes["client"].results.snapshot()}
    assert len(apps) == 2


def test_commit_protocol_logged_in_order():
    report = run_workload(YarnSystem(), seed=0)
    msgs = [r.message for r in report.log.records]
    first_commit_req = next(i for i, m in enumerate(msgs) if "requesting commit permission" in m)
    first_committed = next(i for i, m in enumerate(msgs) if m.startswith("Committed task attempt"))
    assert first_commit_req < first_committed


def test_job_fails_after_task_fail_limit():
    # Crash every NM repeatedly is overkill; instead drop the limit to 0 so
    # the first genuine attempt failure fails the job.
    config = {"yarn.task_fail_limit": 0, "yarn.max_app_attempts": 1}
    report = run_workload(
        YarnSystem(), seed=1, config=config, deadline=60.0,
        before_run=lambda c, w: c.loop.schedule(2.6, lambda: c.crash_host("node2")),
    )
    # either the AM declared the job failed, or recovery was exhausted
    assert report.completed
    assert not report.succeeded
