"""Heartbeat sentinels: liveness verdicts and single-winner takeover.

The sentinel answers two questions the recovery pass depends on: "is the
process behind this job alive *and* making progress?" (both the pid and
the heartbeat must check out) and "which of N concurrent claimants gets
to requeue it?" (exactly one — arbitration by atomic rename).
"""

import multiprocessing
import os
import time

from repro.service.sentinel import ALIVE, MISSING, STALE, Sentinel, pid_alive


def test_missing_until_written(tmp_path):
    sentinel = Sentinel(tmp_path / "s.json")
    assert sentinel.status(10.0) == MISSING
    sentinel.write(job_id="j1")
    assert sentinel.status(10.0) == ALIVE


def test_beat_refreshes_and_extends(tmp_path):
    sentinel = Sentinel(tmp_path / "s.json", owner="w1")
    sentinel.write(phase="starting")
    sentinel.beat(phase="campaign", checkpoint=3)
    data = sentinel.read()
    assert data["phase"] == "campaign"
    assert data["checkpoint"] == 3
    assert data["pid"] == os.getpid()
    assert sentinel.status(10.0) == ALIVE


def test_old_heartbeat_is_stale_even_if_pid_lives(tmp_path):
    """A live-but-silent worker is hung, not healthy."""
    sentinel = Sentinel(tmp_path / "s.json")
    sentinel.write()
    data = sentinel.read()
    data["heartbeat_at"] = time.time() - 60.0
    from repro.service.wal import atomic_write_json
    atomic_write_json(sentinel.path, data)
    assert pid_alive(os.getpid())
    assert sentinel.status(5.0) == STALE


def test_dead_pid_is_stale_even_with_fresh_heartbeat(tmp_path):
    """Kill right after a beat: the fresh file must not read as alive."""
    proc = multiprocessing.get_context("fork").Process(target=time.sleep,
                                                       args=(0,))
    proc.start()
    proc.join()  # a pid guaranteed dead
    sentinel = Sentinel(tmp_path / "s.json")
    sentinel.write()
    data = sentinel.read()
    data["pid"] = proc.pid
    from repro.service.wal import atomic_write_json
    atomic_write_json(sentinel.path, data)
    assert sentinel.status(60.0) == STALE


def test_clear_is_idempotent(tmp_path):
    sentinel = Sentinel(tmp_path / "s.json")
    sentinel.write()
    sentinel.clear()
    sentinel.clear()
    assert sentinel.status(10.0) == MISSING


# ----------------------------------------------------------------------
# takeover arbitration
# ----------------------------------------------------------------------
def test_second_claimer_loses(tmp_path):
    sentinel = Sentinel(tmp_path / "s.json")
    sentinel.write(job_id="j1")
    assert sentinel.claim("daemon-a") is not None
    assert sentinel.claim("daemon-b") is None
    sentinel.release_claim("daemon-a")
    assert sentinel.status(10.0) == MISSING


def _race_claim(path, name, barrier, queue):
    barrier.wait()
    claimed = Sentinel(path).claim(name)
    queue.put((name, claimed is not None))


def test_concurrent_claim_exactly_one_winner(tmp_path):
    """The double-reattach race: two daemons, one job, one winner."""
    context = multiprocessing.get_context("fork")
    for round_no in range(5):
        path = tmp_path / f"s{round_no}.json"
        Sentinel(path).write(job_id="contested")
        barrier = context.Barrier(2)
        queue = context.Queue()
        procs = [context.Process(target=_race_claim,
                                 args=(str(path), name, barrier, queue))
                 for name in ("daemon-a", "daemon-b")]
        for proc in procs:
            proc.start()
        results = dict(queue.get() for _ in procs)
        for proc in procs:
            proc.join()
        assert sorted(results) == ["daemon-a", "daemon-b"]
        assert sum(results.values()) == 1, f"round {round_no}: {results}"
