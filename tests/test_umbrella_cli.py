"""``python -m repro`` is the front door; the old doors are now closed.

The umbrella CLI must list every subcommand and pass arguments through
to each tool's own parser.  The legacy module entry points
(``python -m repro.obs.report`` etc.) served one release as deprecated
aliases and were removed in 1.5.0: they must fail fast with a pointer
to the replacement on stderr, never stdout — CI pipes stdout into
``json.loads``.
"""

import json
import subprocess
import sys

import pytest

SUBCOMMANDS = ("campaign", "daemon", "report", "analytics", "analysis")

LEGACY = (
    "repro.obs",
    "repro.obs.report",
    "repro.obs.analytics",
    "repro.core.analysis",
)


def run_module(module, *args, timeout=240):
    return subprocess.run(
        [sys.executable, "-m", module, *args],
        capture_output=True, text=True, timeout=timeout,
    )


def test_help_lists_every_subcommand():
    proc = run_module("repro", "--help")
    assert proc.returncode == 0, proc.stderr
    for name in SUBCOMMANDS:
        assert name in proc.stdout


def test_no_args_prints_usage_and_succeeds():
    proc = run_module("repro")
    assert proc.returncode == 0
    assert "usage: python -m repro" in proc.stdout


def test_unknown_subcommand_fails_with_usage():
    proc = run_module("repro", "teleport")
    assert proc.returncode == 2
    assert "unknown command" in proc.stderr


@pytest.mark.parametrize("name", SUBCOMMANDS)
def test_subcommand_help_passes_through(name):
    proc = run_module("repro", name, "--help")
    assert proc.returncode == 0, proc.stderr
    assert "usage:" in proc.stdout
    assert f"python -m repro {name}" in proc.stdout


def test_campaign_subcommand_runs_one_campaign():
    proc = run_module("repro", "campaign", "cassandra", "--json", "-")
    assert proc.returncode == 0, proc.stderr
    assert "campaign cassandra" in proc.stdout
    payload = json.loads(proc.stdout[proc.stdout.index("{"):])
    assert payload["system"] == "cassandra"
    assert payload["n_points"] == 3
    assert "CA-15131" in payload["detected_bugs"]


def test_campaign_survives_early_closed_stdout():
    # `python -m repro campaign ... | head` must exit 0 quietly, like the
    # report CLI does — no BrokenPipeError traceback
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "cassandra"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    proc.stdout.close()  # reader goes away before the summary is printed
    err = proc.stderr.read()
    assert proc.wait(timeout=240) == 0, err
    assert "Traceback" not in err


def test_campaign_subcommand_rejects_unknown_system():
    proc = run_module("repro", "campaign", "hadoop-classic")
    assert proc.returncode == 2
    assert "unknown system" in proc.stderr


def test_daemon_subcommand_round_trip(tmp_path):
    service_dir = str(tmp_path / "svc")
    submit = run_module("repro", "daemon", "submit", service_dir,
                        "cassandra")
    assert submit.returncode == 0, submit.stderr
    job_id = submit.stdout.strip()
    assert job_id.startswith("cassandra-")

    start = run_module("repro", "daemon", "start", service_dir,
                       "--workers", "1", "--poll", "0.02", "--no-fsync",
                       "--drain")
    assert start.returncode == 0, start.stderr

    wait = run_module("repro", "daemon", "wait", service_dir, job_id,
                      "--json", "-")
    assert wait.returncode == 0, wait.stderr
    assert json.loads(wait.stdout)["state"] == "done"

    status = run_module("repro", "daemon", "status", service_dir,
                        "--json", "-")
    payload = json.loads(status.stdout)
    assert payload["daemon_alive"] is False
    assert payload["counts"]["done"] == 1


@pytest.mark.parametrize("module", LEGACY)
def test_legacy_entry_point_is_removed(module):
    proc = run_module(module, "--help")
    assert proc.returncode == 2
    # the tombstone points at the replacement on stderr only — stdout
    # stays empty so a mis-piped invocation cannot half-work
    assert "removed in 1.5.0" in proc.stderr
    assert "python -m repro " in proc.stderr
    assert proc.stdout == ""
