"""Unit tests for static crash points, Table 3 keywords, and optimizations."""

import pytest

from repro.core.analysis import (
    READ_KEYWORDS,
    WRITE_KEYWORDS,
    collection_op_kind,
    compute_crash_points,
    extract_access_points,
    load_sources,
)
from repro.core.analysis.types import TypeModel
from repro.core.analysis.static_points import MetaInfoTypes
from tests import toysys


# ---------------------------------------------------------------------------
# Table 3 keyword matching
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name,expected", [
    ("get", "read"),
    ("contains", "read"),       # "contain"
    ("is_empty", "read"),       # "isEmpty"
    ("values", "read"),
    ("toArray", "read"),
    ("peek", "read"),
    ("put", "write"),
    ("add", "write"),
    ("remove", "write"),
    ("clear", "write"),
    ("replace", "write"),
    ("copy_into", "write"),     # "copyInto"
    ("push", "write"),
    ("size", None),             # matches no Table 3 keyword
    ("snapshot", None),
    ("keys", None),
])
def test_collection_op_kind(name, expected):
    assert collection_op_kind(name) == expected


@pytest.mark.parametrize("name,expected", [
    # Keyword matching is *stem* (prefix) matching over the normalized
    # name, exactly as the paper's Table 3 keywords behave on Java method
    # names — these document the deliberate collisions that implies.
    ("setup", "write"),          # "set" prefix: setUp() counts as a write
    ("settle", "write"),         # ditto, even without a set/get semantic
    ("populate", "write"),       # "pop" prefix
    ("getter", "read"),          # "get" prefix
    ("atIndex", "read"),         # "at" prefix
    ("subscribe", "read"),       # "sub" prefix
    ("contains_key", "read"),    # "contain" + normalization
    ("isempty", "read"),         # isEmpty vs is_empty vs isempty normalize
    ("is_empty_now", "read"),
    ("IS_EMPTY", "read"),
    # ...and the near-misses that must NOT match: prefixes, not substrings
    ("reset", None),             # contains "set" but does not start with it
    ("unset", None),
    ("budget", None),            # contains "get"
    ("empty", None),             # "isEmpty" requires the is- prefix
    ("display", None),
])
def test_collection_op_kind_prefix_collisions(name, expected):
    assert collection_op_kind(name) == expected


def test_keyword_lists_match_table3():
    assert set(READ_KEYWORDS) == {
        "get", "peek", "poll", "clone", "at", "element", "index",
        "toArray", "sub", "contain", "isEmpty", "exist", "values",
    }
    assert set(WRITE_KEYWORDS) == {
        "add", "clear", "remove", "retain", "put", "insert", "set",
        "replace", "offer", "push", "pop", "copyInto",
    }


# ---------------------------------------------------------------------------
# crash points on the toy system, with a hand-specified meta universe
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def extraction_and_model():
    from repro.cluster import ids

    sources = load_sources([toysys, ids])
    model = TypeModel.build(sources)
    return extract_access_points(model, sources), model


def meta_universe():
    return MetaInfoTypes(
        logged_types={"NodeId", "TaskId"},
        types={"NodeId", "TaskId", "WorkerRecord"},
        fields={
            ("ToyMaster", "workers"),
            ("ToyMaster", "tasks"),
            ("ToyMaster", "last_worker"),
            ("WorkerRecord", "node_id"),
        },
        logged_base_fields=set(),
    )


def test_access_points_include_collection_ops_and_putfield(extraction_and_model):
    extraction, _ = extraction_and_model
    vias = {(p.field_name, p.via) for p in extraction.points}
    assert ("workers", "put") in vias
    assert ("workers", "get") in vias
    assert ("tasks", "put") in vias
    assert ("last_worker", "putfield") in vias


def test_crash_points_computed_with_optimizations(extraction_and_model):
    extraction, model = extraction_and_model
    result = compute_crash_points(model, extraction, meta_universe())
    enclosings = {(p.enclosing, p.op) for p in result.crash_points}
    # the put in on_register and on_assign survive
    assert ("ToyMaster.on_register", "write") in enclosings
    assert ("ToyMaster.on_assign", "write") in enclosings


def test_return_only_read_promoted_to_unchecked_call_site(extraction_and_model):
    extraction, model = extraction_and_model
    result = compute_crash_points(model, extraction, meta_universe())
    promoted = [p for p in result.crash_points if p.promoted]
    assert any(p.enclosing == "ToyMaster.on_use" for p in promoted)
    # the checked call site is pruned (sanity), the logging-only one too
    assert not any(p.enclosing == "ToyMaster.on_checked_use" for p in promoted)
    assert result.pruned_sanity >= 1


def test_logging_only_read_pruned_as_unused(extraction_and_model):
    extraction, model = extraction_and_model
    result = compute_crash_points(model, extraction, meta_universe())
    assert not any(p.enclosing == "ToyMaster.on_peek" for p in result.crash_points)
    assert result.pruned_unused >= 1


def test_constructor_only_ref_reads_pruned(extraction_and_model):
    extraction, model = extraction_and_model
    result = compute_crash_points(model, extraction, meta_universe())
    assert not any(
        p.field_name == "node_id" and p.via in ("getfield", "putfield")
        for p in result.crash_points
    )
    assert result.pruned_constructor >= 1


def test_non_meta_fields_never_crash_points(extraction_and_model):
    extraction, model = extraction_and_model
    result = compute_crash_points(model, extraction, meta_universe())
    assert not any(p.field_name == "counter" for p in result.crash_points)


def test_augassign_emits_read_and_write():
    """`self.count += 1` both reads and writes the field: one classified
    getfield read plus one putfield write at the same line."""
    import textwrap
    import ast as ast_mod
    import types as types_mod
    from repro.core.analysis.logging_statements import ModuleSource

    code = textwrap.dedent('''
        from repro.cluster.ids import NodeId

        class Tally:
            def __init__(self, node_id: NodeId):
                self.node = node_id
                self.count = 0

            def bump(self):
                self.count += 1
    ''')
    mod = types_mod.ModuleType("augmod")
    src = ModuleSource(module=mod, name="augmod", source=code,
                       tree=ast_mod.parse(code))
    from repro.cluster import ids

    sources = [src] + load_sources([ids])
    model = TypeModel.build(sources)
    extraction = extract_access_points(model, sources)
    bump = [p for p in extraction.points if p.enclosing == "Tally.bump"]
    assert {(p.op, p.via) for p in bump} == {("read", "getfield"),
                                             ("write", "putfield")}
    read = next(p for p in bump if p.op == "read")
    write = next(p for p in bump if p.op == "write")
    assert read.lineno == write.lineno
    # the read side went through classification like any other read
    assert not read.unused and not read.sanity_checked and not read.return_only


def test_patched_guard_counts_as_check_only_when_patched():
    """A sanity check behind cluster.is_patched('X') exists only in builds
    where X is patched — mirroring conditional compilation of the fix."""
    import textwrap
    import ast as ast_mod
    from repro.core.analysis.logging_statements import ModuleSource
    import types as types_mod

    code = textwrap.dedent('''
        from typing import Dict, Optional
        from repro.cluster import Node, tracked_dict
        from repro.cluster.ids import NodeId

        class M(Node):
            d: Dict[NodeId, str] = tracked_dict()

            def on_x(self, src, k: NodeId):
                v = self.d.get(k)
                if self.cluster.is_patched("BUG-1") and v is None:
                    return
                return len(v)
    ''')
    mod = types_mod.ModuleType("fakemod")
    src = ModuleSource(module=mod, name="fakemod", source=code,
                       tree=ast_mod.parse(code))
    from repro.cluster import ids

    sources = [src] + load_sources([ids])
    model = TypeModel.build(sources)
    unpatched = extract_access_points(model, sources, patched=frozenset())
    patched = extract_access_points(model, sources, patched=frozenset({"BUG-1"}))
    get_un = next(p for p in unpatched.points if p.via == "get")
    get_pa = next(p for p in patched.points if p.via == "get")
    assert not get_un.sanity_checked
    assert get_pa.sanity_checked
