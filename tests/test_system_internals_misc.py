"""Unit tests for HDFS/HBase/Cassandra component internals."""

import pytest

from repro.cluster import Cluster
from repro.cluster.ids import (
    CLUSTER_TIMESTAMP,
    BlockId,
    InetAddressAndPort,
    NodeId,
    RegionInfo,
    ServerName,
)
from repro.systems.cassandra.node import CassandraNode
from repro.systems.hbase.master import META_REGION, HMaster, ServerInfo
from repro.systems.hdfs.namenode import NameNode
from repro.systems.hdfs.records import BlockInfo, DatanodeDescriptor, INodeFile


# ---------------------------------------------------------------------------
# HDFS records and NameNode policies
# ---------------------------------------------------------------------------
def test_block_under_replication():
    block = BlockInfo(BlockId(1), "/f", replication=2)
    assert block.under_replicated()
    block.locations.append(NodeId("node1", 9866))
    assert block.under_replicated()
    block.locations.append(NodeId("node2", 9866))
    assert not block.under_replicated()


def test_datanode_descriptor_renders_with_address():
    d = DatanodeDescriptor(NodeId("node2", 9866), "DS-1")
    assert "node2:9866" in str(d)


def test_inode_tracks_completion():
    inode = INodeFile("/f", client="client")
    assert not inode.complete
    assert str(inode) == "/f"


def _live_nn():
    cluster = Cluster("t")
    cluster.activate()
    nn = NameNode(cluster, "nn")
    nn.start()
    return cluster, nn


def test_choose_targets_prefers_emptier_datanodes():
    cluster, nn = _live_nn()
    try:
        for i in (1, 2, 3):
            nn.on_register_datanode(f"node{i}", NodeId(f"node{i}", 9866), f"DS-{i}")
        nn.datanodes.get(NodeId("node1", 9866)).block_ids.append(BlockId(9))
        targets = nn._choose_targets()
        assert len(targets) == nn.replication
        assert NodeId("node1", 9866) not in targets  # it carries more blocks
    finally:
        cluster.deactivate()


def test_create_file_fails_without_enough_datanodes():
    cluster, nn = _live_nn()
    try:
        nn.on_register_datanode("node1", NodeId("node1", 9866), "DS-1")
        nn.on_create_file("client", "/f", num_blocks=1)
        cluster.run(until=0.5)
        assert cluster.log_collector.grep("Not enough datanodes")
    finally:
        cluster.deactivate()


def test_replication_target_avoids_existing_locations():
    cluster, nn = _live_nn()
    try:
        for i in (1, 2):
            nn.on_register_datanode(f"node{i}", NodeId(f"node{i}", 9866), f"DS-{i}")
        block = BlockInfo(BlockId(5), "/f", replication=2)
        block.locations.append(NodeId("node1", 9866))
        target = nn._pick_replication_target(block)
        assert target == NodeId("node2", 9866)
    finally:
        cluster.deactivate()


# ---------------------------------------------------------------------------
# HBase master internals
# ---------------------------------------------------------------------------
def _live_master():
    cluster = Cluster("t")
    cluster.activate()
    master = HMaster(cluster, "hmaster")
    master.start()
    return cluster, master


def _sn(i):
    return ServerName(f"node{i}", 16020, CLUSTER_TIMESTAMP)


def test_pick_server_load_balances_and_excludes():
    cluster, master = _live_master()
    try:
        for i in (1, 2):
            master.online_servers.put(_sn(i), ServerInfo(_sn(i)))
        first = master._pick_server(exclude=None)
        second = master._pick_server(exclude=None)
        assert first != second  # load-based rotation
        only = master._pick_server(exclude=second)
        assert only != second
    finally:
        cluster.deactivate()


def test_parse_server_name_roundtrip():
    cluster, master = _live_master()
    try:
        sn = _sn(3)
        parsed = master._parse_server_name(f"/hbase/rs/{sn}")
        assert parsed == sn
        assert master._parse_server_name("/hbase/rs/garbage") is None
    finally:
        cluster.deactivate()


def test_server_crash_procedure_reassigns_only_victims_regions():
    cluster, master = _live_master()
    try:
        for i in (1, 2):
            master.online_servers.put(_sn(i), ServerInfo(_sn(i)))
        r1 = RegionInfo("usertable", "row01", 1)
        r2 = RegionInfo("usertable", "row02", 2)
        master.regions.put(r1, _sn(1))
        master.regions.put(r2, _sn(2))
        master.meta_assigned = True
        master._handle_server_crash(_sn(1))
        cluster.run(until=1.0)
        assert not master.online_servers.contains(_sn(1))
        assert master.regions.get(r2) == _sn(2)  # untouched
        assert master.transitions.contains(r1)  # being moved
    finally:
        cluster.deactivate()


def test_meta_region_identity():
    assert str(META_REGION) == "hbase:meta,,1"


# ---------------------------------------------------------------------------
# Cassandra ring
# ---------------------------------------------------------------------------
def _live_ring():
    cluster = Cluster("t")
    cluster.activate()
    names = ["node1", "node2", "node3"]
    nodes = [CassandraNode(cluster, n, peers=names, rf=3) for n in names]
    for node in nodes:
        node.start()
    return cluster, nodes


def test_replica_plan_is_consistent_across_nodes():
    cluster, nodes = _live_ring()
    try:
        plans = [tuple(map(str, n._replica_plan("key42"))) for n in nodes]
        assert plans[0] == plans[1] == plans[2]
        assert len(plans[0]) == 3
    finally:
        cluster.deactivate()


def test_replica_plan_shrinks_when_endpoint_leaves():
    cluster, nodes = _live_ring()
    try:
        ep = InetAddressAndPort("node2", 7000)
        nodes[0].endpoints.remove(ep)
        plan = nodes[0]._replica_plan("key42")
        assert ep not in plan
        assert len(plan) == 2
    finally:
        cluster.deactivate()


def test_token_function_is_stable_and_bounded():
    t1 = CassandraNode._token("abc")
    t2 = CassandraNode._token("abc")
    assert t1 == t2
    assert 0 <= t1 < 1024


def test_conviction_after_silence():
    cluster, nodes = _live_ring()
    try:
        cluster.crash("node3")
        cluster.run(until=5.0)
        ep = InetAddressAndPort("node3", 7000)
        assert not nodes[0].endpoints.contains(ep)
        assert cluster.log_collector.grep("is now DOWN")
    finally:
        cluster.deactivate()


def test_gossip_rediscovers_returning_endpoint():
    cluster, nodes = _live_ring()
    try:
        ep = InetAddressAndPort("node2", 7000)
        nodes[0].endpoints.remove(ep)  # locally convicted
        cluster.run(until=2.0)  # node2 keeps gossiping
        assert nodes[0].endpoints.contains(ep)
        assert cluster.log_collector.grep("is now UP")
    finally:
        cluster.deactivate()
