"""Unit tests for repro.obs: tracer, metrics, context, export, report CLI."""

import json

import pytest

from repro.cluster import Cluster
from repro.obs import (
    NULL_OBS,
    InjectionDiagnosis,
    MetricsRegistry,
    NullMetricsRegistry,
    NullTracer,
    Observability,
    SpanRecord,
    Tracer,
    format_diagnoses,
    get_obs,
    read_trace_jsonl,
    write_trace_jsonl,
)
from repro.obs.report import diff, main, summarize, summarize_json


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
def test_spans_nest_and_record_parents():
    tracer = Tracer()
    with tracer.span("outer", a=1) as outer:
        tracer.event("inside")
        with tracer.span("inner"):
            pass
        outer.set(b=2)
    assert [s.name for s in tracer.spans] == ["inside", "inner", "outer"]
    by_name = {s.name: s for s in tracer.spans}
    assert by_name["inner"].parent_id == by_name["outer"].span_id
    assert by_name["inside"].parent_id == by_name["outer"].span_id
    assert by_name["outer"].parent_id is None
    assert by_name["outer"].attrs == {"a": 1, "b": 2}


def test_spans_are_stamped_with_simulated_time():
    tracer = Tracer()
    cluster = Cluster("t")
    with cluster:
        with tracer.span("run") as span:
            cluster.loop.schedule(5.0, lambda: tracer.event("tick"))
            cluster.run()
    record = tracer.named("run")[0]
    assert record.start == 0.0
    assert record.end == 5.0
    assert record.duration == 5.0
    assert tracer.named("tick")[0].start == 5.0


def test_exception_unwinding_closes_open_spans():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("outer"):
            inner = tracer.span("inner")  # deliberately not used as a ctx
            assert inner.record.name == "inner"
            raise RuntimeError("boom")
    assert {s.name for s in tracer.spans} == {"outer", "inner"}
    assert all(s.end is not None for s in tracer.spans)


def test_tracer_max_spans_counts_drops():
    tracer = Tracer(max_spans=2)
    for i in range(5):
        tracer.event("e", i=i)
    assert len(tracer.spans) == 2
    assert tracer.dropped == 3


def test_null_tracer_is_inert():
    tracer = NullTracer()
    with tracer.span("anything", x=1) as span:
        span.set(y=2)
    tracer.event("nothing")
    assert len(tracer) == 0
    assert tracer.spans == []
    assert not tracer.enabled


def test_span_record_roundtrip():
    record = SpanRecord(span_id=3, parent_id=1, name="rpc", start=1.5,
                        end=2.0, node="nm1", attrs={"method": "ping"})
    assert SpanRecord.from_dict(record.to_dict()) == record


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def test_metrics_registry_counters_gauges_histograms():
    metrics = MetricsRegistry()
    metrics.counter("c").inc()
    metrics.counter("c").inc(4)
    metrics.gauge("g").set(7.5)
    for v in (1.0, 3.0, 2.0):
        metrics.histogram("h").observe(v)
    snap = metrics.snapshot()
    assert snap["counters"] == {"c": 5}
    assert snap["gauges"] == {"g": 7.5}
    assert snap["histograms"]["h"] == {
        "count": 3, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0,
    }


def test_metrics_instruments_are_memoized():
    metrics = MetricsRegistry()
    assert metrics.counter("x") is metrics.counter("x")
    assert metrics.histogram("x") is metrics.histogram("x")


def test_empty_histogram_summary_is_zeroed():
    assert MetricsRegistry().histogram("h").summary()["min"] == 0.0


def test_null_registry_is_inert():
    metrics = NullMetricsRegistry()
    metrics.counter("c").inc()
    metrics.gauge("g").set(1)
    metrics.histogram("h").observe(1)
    assert metrics.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
    assert not metrics.enabled


# ----------------------------------------------------------------------
# ambient context
# ----------------------------------------------------------------------
def test_default_context_is_null_and_disabled():
    assert get_obs() is NULL_OBS
    assert not NULL_OBS.enabled
    assert not NULL_OBS.tracer.enabled
    assert not NULL_OBS.metrics.enabled


def test_context_installs_and_restores():
    obs = Observability()
    with obs:
        assert get_obs() is obs
        assert get_obs().enabled
    assert get_obs() is NULL_OBS


def test_context_reentry_restores_correctly():
    obs = Observability()
    with obs:
        with obs:  # crashtuner() around run_campaign() re-enters
            assert get_obs() is obs
        assert get_obs() is obs
    assert get_obs() is NULL_OBS


def test_cluster_snapshots_ambient_context_at_construction():
    obs = Observability()
    with obs:
        cluster = Cluster("t")
    assert cluster.obs is obs
    assert cluster.loop.obs is obs
    assert Cluster("u").obs is NULL_OBS


# ----------------------------------------------------------------------
# export + report CLI
# ----------------------------------------------------------------------
def _sample_obs():
    obs = Observability()
    with obs:
        with obs.tracer.span("workload", system="toy"):
            obs.tracer.event("fault.crash", node="n1")
        obs.metrics.counter("net.rpcs_sent").inc(3)
        obs.metrics.histogram("sim.queue_depth").observe(4.0)
        obs.diagnoses.append(InjectionDiagnosis(
            system="toy", point="read F.x via getfield at m:1", op="read",
            field_name="x", enclosing="F.f", stack=["m.F.f:1"], fired=True,
            values=["v1"], resolved_value="v1", target_host="n1",
            action="shutdown", verdict_kinds=["hang"], flagged=True,
            matched_bugs=["TOY-1"], duration=2.0, events_processed=10,
        ))
    return obs


def test_trace_jsonl_roundtrip(tmp_path):
    obs = _sample_obs()
    path = write_trace_jsonl(tmp_path / "t.jsonl", obs=obs,
                             meta={"system": "toy", "seed": 3})
    trace = read_trace_jsonl(path)
    assert trace.meta == {"system": "toy", "seed": 3}
    assert [s.name for s in trace.spans] == [s.name for s in obs.tracer.spans]
    assert trace.spans[0].to_dict() == obs.tracer.spans[0].to_dict()
    assert trace.metrics == obs.metrics.snapshot()
    assert len(trace.diagnoses) == 1
    assert trace.diagnoses[0] == obs.diagnoses[0]


def test_trace_jsonl_surfaces_dropped_spans(tmp_path):
    obs = Observability(tracer=Tracer(max_spans=1))
    with obs:
        obs.tracer.event("a")
        obs.tracer.event("b")
    trace = read_trace_jsonl(write_trace_jsonl(tmp_path / "t.jsonl", obs=obs))
    assert trace.meta["dropped_spans"] == 1


def test_trace_jsonl_rejects_unknown_line_type(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"type": "mystery"}) + "\n")
    with pytest.raises(ValueError, match="mystery"):
        read_trace_jsonl(path)


def test_diagnosis_outcome_and_resolution_labels():
    d = InjectionDiagnosis(system="s", point="p", op="read", field_name="f",
                           enclosing="C.m")
    assert d.outcome() == "not-fired" and d.resolution() == "-"
    d.fired = True
    assert d.outcome() == "unresolved" and d.resolution() == "unresolved"
    d.action = "crash"
    d.resolved_value, d.target_host = "v", "n2"
    assert d.outcome() == "ok" and d.resolution() == "v->n2"
    d.via_fallback = True
    assert d.resolution() == "fallback->n2"
    d.flagged, d.verdict_kinds = True, ["hang", "timeout"]
    assert d.outcome() == "hang+timeout"


def test_format_diagnoses_renders_table():
    obs = _sample_obs()
    text = format_diagnoses(obs.diagnoses)
    assert "Injection diagnoses" in text
    assert "v1->n1" in text
    assert "TOY-1" in text


def test_summarize_and_diff(tmp_path):
    obs = _sample_obs()
    trace = read_trace_jsonl(write_trace_jsonl(tmp_path / "a.jsonl", obs=obs,
                                               meta={"system": "toy"}))
    text = summarize(trace)
    assert "workload" in text and "net.rpcs_sent" in text and "hang" in text

    other = _sample_obs()
    other.metrics.counter("net.rpcs_sent").inc(2)
    other.diagnoses[0].matched_bugs = []
    other.diagnoses[0].verdict_kinds = []
    other.diagnoses[0].flagged = False
    trace_b = read_trace_jsonl(write_trace_jsonl(tmp_path / "b.jsonl", obs=other))
    delta = diff(trace, trace_b)
    assert "net.rpcs_sent" in delta and "+2" in delta
    assert "hang" in delta and "TOY-1" in delta


def test_report_cli_summarize_and_diff(tmp_path, capsys):
    obs = _sample_obs()
    a = str(write_trace_jsonl(tmp_path / "a.jsonl", obs=obs))
    b = str(write_trace_jsonl(tmp_path / "b.jsonl", obs=_sample_obs()))
    assert main([a]) == 0
    assert "Injection diagnoses" in capsys.readouterr().out
    assert main([a, b]) == 0
    assert "No diagnosis changes" in capsys.readouterr().out
    # explicit subcommands mean the same thing as the legacy spellings
    assert main(["summarize", a]) == 0
    assert "Injection diagnoses" in capsys.readouterr().out
    assert main(["diff", a, b]) == 0
    assert "No diagnosis changes" in capsys.readouterr().out


def test_report_cli_summarize_json(tmp_path, capsys):
    obs = _sample_obs()
    a = str(write_trace_jsonl(tmp_path / "a.jsonl", obs=obs,
                              meta={"system": "toy"}))
    assert main(["summarize", a, "--json", "-"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["meta"] == {"system": "toy"}
    assert payload["outcomes"] == {"hang": 1}
    assert payload["bugs"] == {"TOY-1": 1}
    assert payload["spans"]["workload"]["count"] == 1
    assert payload["diagnoses"][0]["point"] == obs.diagnoses[0].point
    # the function behind the flag is the payload diff() consumes
    assert payload == summarize_json(read_trace_jsonl(a))

    dump = tmp_path / "summary.json"
    assert main(["summarize", a, "--json", str(dump)]) == 0
    assert f"wrote {dump}" in capsys.readouterr().out
    assert json.loads(dump.read_text()) == payload


def test_report_cli_errors_cleanly_on_missing_and_corrupt(tmp_path, capsys):
    missing = str(tmp_path / "missing.jsonl")
    assert main([missing]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:") and "Traceback" not in err

    corrupt = tmp_path / "corrupt.jsonl"
    corrupt.write_text('{"type": "meta"}\nnot json at all\n{"type": "meta"}\n')
    assert main(["summarize", str(corrupt)]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:") and "not JSON" in err and ":2" in err

    assert main(["diff", missing, missing]) == 1
    assert capsys.readouterr().err.startswith("error:")


# ----------------------------------------------------------------------
# round-trip edges (empty, unicode, torn tail, forward compatibility)
# ----------------------------------------------------------------------
def test_empty_trace_roundtrip(tmp_path, capsys):
    path = write_trace_jsonl(tmp_path / "empty.jsonl", diagnoses=[])
    trace = read_trace_jsonl(path)
    assert trace.meta == {} and trace.spans == []
    assert trace.metrics == {} and trace.diagnoses == []
    assert main([str(path)]) == 0
    assert "(empty trace)" in capsys.readouterr().out


def test_unicode_survives_the_roundtrip(tmp_path):
    obs = Observability()
    with obs:
        with obs.tracer.span("workload", note="héârtbeat – 心跳 ✓"):
            pass
        obs.diagnoses.append(InjectionDiagnosis(
            system="toy", point="read F.x via getfield at m:1", op="read",
            field_name="x", enclosing="F.f", fired=True,
            values=["ünïcode-väl", "节点-1"], resolved_value="节点-1",
            target_host="nœud-1",
            uncommon_templates=["nm|ERROR|lost node {} ümlaut|KeyError"],
        ))
    trace = read_trace_jsonl(write_trace_jsonl(tmp_path / "u.jsonl", obs=obs))
    assert trace.spans[0].attrs["note"] == "héârtbeat – 心跳 ✓"
    assert trace.diagnoses[0] == obs.diagnoses[0]


def test_torn_final_line_is_dropped(tmp_path):
    obs = _sample_obs()
    path = write_trace_jsonl(tmp_path / "t.jsonl", obs=obs,
                             meta={"system": "toy"})
    intact = read_trace_jsonl(path)
    whole = path.read_text()
    # kill the writer mid-line: every prefix of the final record must
    # still parse to the same trace minus the torn diagnosis
    torn = whole.rstrip("\n")
    path.write_text(torn[: len(torn) - 9])
    trace = read_trace_jsonl(path)
    assert trace.meta == intact.meta
    assert len(trace.spans) == len(intact.spans)
    assert trace.diagnoses == []

    # but corruption before the last line is still an error
    lines = whole.splitlines()
    lines[1] = lines[1][:10]
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match="not JSON"):
        read_trace_jsonl(path)


def test_diagnosis_from_dict_ignores_forward_keys(tmp_path):
    d = _sample_obs().diagnoses[0]
    data = d.to_dict()
    data["added_in_a_future_release"] = {"nested": True}
    assert InjectionDiagnosis.from_dict(data) == d
    # and a whole trace line carrying unknown keys reads fine
    path = tmp_path / "fwd.jsonl"
    path.write_text(json.dumps({"type": "diagnosis", **data}) + "\n")
    assert read_trace_jsonl(path).diagnoses == [d]


def test_malformed_record_reports_path_and_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type": "span", "nonsense": 1}\n{"type": "meta"}\n')
    with pytest.raises(ValueError, match=r"bad\.jsonl:1: malformed span"):
        read_trace_jsonl(path)
