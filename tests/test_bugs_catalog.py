"""Integrity tests for the bug catalog against the paper's tables."""

from collections import Counter

from repro.bugs import (
    ALL_BUGS,
    KUBERNETES_BUGS,
    NEW_BUGS,
    NON_TIMING_SENSITIVE,
    PAPER_NOT_REPRODUCED,
    STUDIED_BUGS,
    TABLE6_CREB,
    TABLE6_NEW,
    TIMEOUT_ISSUES,
    all_patched_config,
    bugs_for_system,
    get_bug,
    seeded_bugs,
)


def test_table1_has_52_timing_sensitive_bugs():
    assert len(STUDIED_BUGS) == 52


def test_table1_per_system_counts():
    counts = Counter(b.system for b in STUDIED_BUGS)
    assert counts == {"yarn": 17, "hdfs": 7, "hbase": 27, "zookeeper": 1}


def test_table1_hregionserver_cluster_is_fifteen():
    hrs = [b for b in STUDIED_BUGS if b.meta_info == "HRegionServer"]
    assert len(hrs) == 15


def test_section2_accounting():
    # 116 database bugs - 34 multi-crash - 16 IO = 66; 66 - 14 = 52
    assert NON_TIMING_SENSITIVE == 14
    assert len(STUDIED_BUGS) + NON_TIMING_SENSITIVE == 66


def test_table5_has_18_issues_21_bugs():
    assert len(NEW_BUGS) == 18
    assert sum(b.bug_count for b in NEW_BUGS) == 21


def test_table5_critical_count_is_8():
    criticals = [b for b in NEW_BUGS if b.priority == "Critical"]
    assert sum(b.bug_count for b in criticals) == 8


def test_table5_fixed_count_is_16():
    fixed = [b for b in NEW_BUGS if b.status.lower() == "fixed"]
    assert sum(b.bug_count for b in fixed) == 16


def test_table5_scenario_split():
    pre = sum(b.bug_count for b in NEW_BUGS if b.scenario == "pre-read")
    post = sum(b.bug_count for b in NEW_BUGS if b.scenario == "post-write")
    assert pre + post == 21
    assert post == 4  # HBASE-22041, HBASE-21740, MR-7178, HBASE-22023


def test_every_new_bug_is_seeded_with_matcher():
    for bug in NEW_BUGS:
        assert bug.seeded, bug.id
        assert bug.matcher is not None, bug.id


def test_table6_fix_complexity_values():
    assert TABLE6_CREB.days_to_fix == 92.0
    assert TABLE6_NEW.days_to_fix == 16.8
    assert TABLE6_NEW.loc_of_patch == 114.8
    assert TABLE6_CREB.comments == 26.0


def test_table13_kubernetes_counts():
    assert len(KUBERNETES_BUGS) == 14
    counts = Counter(b.meta_info for b in KUBERNETES_BUGS)
    assert counts == {"Node": 8, "Pod": 6}


def test_timeout_issues_catalogued():
    assert {b.id for b in TIMEOUT_ISSUES} == {"TO-YARN-1", "TO-YARN-2", "TO-HBASE-1"}


def test_paper_not_reproduced_set_is_seven():
    assert len(PAPER_NOT_REPRODUCED) == 7
    for bug_id in PAPER_NOT_REPRODUCED:
        assert get_bug(bug_id).notes  # each carries its reason


def test_bug_ids_unique():
    ids = [b.id for b in ALL_BUGS]
    assert len(ids) == len(set(ids))


def test_lookup_helpers():
    assert get_bug("YARN-9238").priority == "Critical"
    assert all(b.system == "hdfs" for b in bugs_for_system("hdfs"))
    assert all(b.source == "new" for b in bugs_for_system("yarn", source="new"))
    assert all(b.seeded for b in seeded_bugs())
    assert seeded_bugs("cassandra")


def test_all_patched_config_covers_every_seeded_flag():
    patched = all_patched_config()["patched_bugs"]
    for bug in seeded_bugs():
        assert bug.flag in patched


def test_matchers_require_system_match():
    from repro.bugs import match_bugs
    from repro.core.injection.oracles import OracleVerdict
    from repro.systems.base import RunReport

    report = RunReport(system="hdfs", seed=0, completed=True, succeeded=False,
                       duration=1.0, deadline=4.0, wall_seconds=0.0)
    verdict = OracleVerdict(job_failure=True, hang=False, timeout_issue=False)
    hits = match_bugs(report, verdict)
    assert all(get_bug(h).system == "hdfs" for h in hits)
