"""Regression pins: the exact detection results of the full pipeline.

The simulation is deterministic, so the set of bugs each campaign detects
is a stable artifact — any unintended change to the substrate, the
analysis, or the systems shows up here first.
"""

import pytest

from repro.bugs import matcher_for_system, seeded_bugs
from repro.core.injection import run_campaign
from tests.conftest import prepared

EXPECTED = {
    "yarn": {
        "MR-3858", "MR-7178", "TO-YARN-1", "TO-YARN-2", "YARN-5918",
        "YARN-8649", "YARN-8650", "YARN-9164", "YARN-9165", "YARN-9193",
        "YARN-9194", "YARN-9201", "YARN-9238", "YARN-9248",
    },
    "hdfs": {"HDFS-14216", "HDFS-14372", "HDFS-6231"},
    "hbase": {
        "HBASE-21740", "HBASE-22017", "HBASE-22023", "HBASE-22041",
        "HBASE-22050", "HBASE-3617", "TO-HBASE-1",
    },
    "zookeeper": set(),
    "cassandra": {"CA-15131"},
    "kube": {"kube-53647", "kube-68173"},
}


@pytest.mark.parametrize("system_name", sorted(EXPECTED))
def test_campaign_detects_exactly_the_seeded_bugs(system_name):
    system, analysis, profile, baseline = prepared(system_name)
    result = run_campaign(system, analysis, profile.dynamic_points,
                          baseline=baseline,
                          matcher=matcher_for_system(system_name))
    assert set(result.detected_bugs()) == EXPECTED[system_name]


def test_expected_sets_cover_every_matchable_seeded_bug():
    for system_name, expected in EXPECTED.items():
        matchable = {b.id for b in seeded_bugs(system_name) if b.matcher is not None}
        assert expected == matchable, system_name
