"""The examples are part of the public surface: they must keep running."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )


def test_quickstart_runs_and_reports_a_bug():
    proc = run_example("quickstart.py")
    assert proc.returncode == 0, proc.stderr
    assert "CA-15131" in proc.stdout
    assert "dynamic crash pts" in proc.stdout


def test_quickstart_on_zookeeper_reports_none():
    proc = run_example("quickstart.py", "zookeeper")
    assert proc.returncode == 0, proc.stderr
    assert "No bugs detected" in proc.stdout


def test_meta_info_explorer_runs(tmp_path):
    dot = tmp_path / "g.dot"
    proc = run_example("meta_info_explorer.py", "hdfs", "--dot", str(dot))
    assert proc.returncode == 0, proc.stderr
    assert "Table 2" in proc.stdout
    assert dot.read_text().startswith("graph meta_info")


def test_multi_crash_extension_runs():
    proc = run_example("multi_crash_extension.py", "cassandra", "4")
    assert proc.returncode == 0, proc.stderr
    assert "pair runs" in proc.stdout


def test_trace_campaign_writes_and_summarizes_a_trace(tmp_path):
    out = tmp_path / "trace.jsonl"
    proc = run_example("trace_campaign.py", "yarn", "--points", "10",
                       "--out", str(out), "--diff-fallback")
    assert proc.returncode == 0, proc.stderr
    assert "Injection diagnoses" in proc.stdout
    assert "Metric deltas" in proc.stdout
    assert out.exists() and out.read_text().count('"diagnosis"') == 10


def test_trace_campaign_analytics_and_novelty_order(tmp_path):
    out = tmp_path / "trace.jsonl"
    proc = run_example("trace_campaign.py", "yarn", "--points", "10",
                       "--order", "novelty", "--analytics", "--rank",
                       "--out", str(out))
    assert proc.returncode == 0, proc.stderr
    assert "Failure modes" in proc.stdout
    assert "Canonical detections" in proc.stdout
    assert "Anomaly ranking" in proc.stdout
    assert "first detection at injection 0 (novelty order)" in proc.stdout


def test_trace_campaign_help_documents_campaign_knobs():
    proc = run_example("trace_campaign.py", "--help")
    assert proc.returncode == 0, proc.stderr
    for flag in ("--workers", "--journal", "--order", "--analytics", "--rank"):
        assert flag in proc.stdout
    assert "resumes where it left off" in proc.stdout


@pytest.mark.slow
def test_find_yarn_bugs_runs_end_to_end():
    proc = run_example("find_yarn_bugs.py", timeout=600)
    assert proc.returncode == 0, proc.stderr
    assert "14 detected / 14 seeded" in proc.stdout
    assert "prunes" in proc.stdout
