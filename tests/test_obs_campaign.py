"""Campaign-level observability: diagnoses, metrics, traces, and the CLI.

Covers the acceptance criterion: a YARN campaign run with observability
enabled emits a JSONL trace and metrics snapshot with one diagnosis
record per dynamic crash point tested — point id, value -> node
resolution, action taken, and oracle verdict.
"""

from repro.bugs import matcher_for_system
from repro.core.injection import CampaignConfig, run_campaign
from repro.obs import Observability, read_trace_jsonl, write_trace_jsonl
from repro.obs.report import main as report_main
from tests.conftest import prepared

#: enough YARN points to cover unresolved, crash, shutdown, and flagged runs
N_POINTS = 12

_CACHE = {}


def traced_yarn_campaign(random_fallback=False):
    if random_fallback not in _CACHE:
        system, analysis, profile, baseline = prepared("yarn")
        obs = Observability()
        result = run_campaign(
            system, analysis, profile.dynamic_points[:N_POINTS], baseline=baseline,
            campaign=CampaignConfig(random_fallback=random_fallback),
            matcher=matcher_for_system("yarn"), obs=obs,
        )
        _CACHE[random_fallback] = (obs, result)
    return _CACHE[random_fallback]


def test_campaign_emits_one_diagnosis_per_point():
    obs, result = traced_yarn_campaign()
    assert len(obs.diagnoses) == N_POINTS
    assert len(result.diagnoses()) == N_POINTS
    for outcome, diagnosis in zip(result.outcomes, result.diagnoses()):
        assert diagnosis.point == outcome.dpoint.point.describe()
        assert diagnosis.fired == outcome.fired
        assert diagnosis.flagged == outcome.flagged
        assert diagnosis.verdict_kinds == outcome.verdict.kinds()
        assert diagnosis.matched_bugs == outcome.matched_bugs
        assert diagnosis.duration == outcome.duration
        if outcome.injection is not None:
            assert diagnosis.action == outcome.injection.kind
            assert diagnosis.target_host == outcome.injection.target_host
            assert diagnosis.injection_time == outcome.injection.time
        else:
            assert diagnosis.action == ""
        assert diagnosis.events_processed > 0


def test_campaign_metrics_snapshot_covers_every_layer():
    obs, result = traced_yarn_campaign()
    counters = result.metrics["counters"]
    # sim kernel, network, injection, oracle — every layer reported in
    assert counters["sim.events_processed"] > 0
    assert counters["net.rpcs_sent"] > 0
    assert counters["net.rpcs_delivered"] > 0
    assert counters["inject.crash_points_visited"] > 0
    assert counters["oracle.flagged"] + counters["oracle.clean"] >= N_POINTS
    assert counters["fault.crashes"] + counters["fault.shutdowns"] > 0
    assert result.metrics["histograms"]["sim.queue_depth"]["count"] == \
        counters["sim.events_processed"]
    assert result.metrics["gauges"]["onlinelog.store_size"] > 0


def test_campaign_trace_spans_cover_workload_rpc_recovery_injection():
    obs, _ = traced_yarn_campaign()
    names = {s.name for s in obs.tracer.spans}
    assert "workload" in names
    assert "rpc" in names
    assert "injection" in names
    assert any(n.startswith("recovery.") for n in names)
    # every injection span sits somewhere below a workload span (directly
    # for timer-context triggers, via an rpc span for handler-context ones)
    by_id = {s.span_id: s for s in obs.tracer.spans}
    workload_ids = {s.span_id for s in obs.tracer.named("workload")}

    def has_workload_ancestor(span):
        parent = span.parent_id
        while parent is not None:
            if parent in workload_ids:
                return True
            parent = by_id[parent].parent_id
        return False

    injections = obs.tracer.named("injection")
    assert injections
    assert all(has_workload_ancestor(s) for s in injections)


def test_resolution_fields_distinguish_store_hits_from_fallback():
    obs, _ = traced_yarn_campaign()
    resolved = [d for d in obs.diagnoses if d.fired and d.action]
    assert resolved, "expected some points to resolve via the online store"
    for diagnosis in resolved:
        assert diagnosis.resolved_value != ""
        assert not diagnosis.via_fallback
        assert diagnosis.target_host
    unresolved = [d for d in obs.diagnoses if d.fired and not d.action]
    assert unresolved, "expected some early-startup points to be unresolvable"

    obs_fb, _ = traced_yarn_campaign(random_fallback=True)
    fallback = [d for d in obs_fb.diagnoses if d.via_fallback]
    assert fallback, "random fallback should target unresolvable points"
    for diagnosis in fallback:
        assert diagnosis.resolved_value == ""
        assert diagnosis.target_host
        assert diagnosis.action


def test_campaign_trace_jsonl_and_cli(tmp_path, capsys):
    obs, result = traced_yarn_campaign()
    path = write_trace_jsonl(tmp_path / "yarn.jsonl", obs=obs,
                             meta={"system": "yarn"})
    trace = read_trace_jsonl(path)
    assert len(trace.diagnoses) == N_POINTS
    assert trace.metrics == result.metrics
    assert len(trace.spans) == len(obs.tracer.spans)

    assert report_main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "Injection diagnoses" in out
    assert "sim.events_processed" in out

    obs_fb, _ = traced_yarn_campaign(random_fallback=True)
    path_fb = write_trace_jsonl(tmp_path / "yarn-fb.jsonl", obs=obs_fb)
    assert report_main([str(path), str(path_fb)]) == 0
    out = capsys.readouterr().out
    assert "Metric deltas" in out


def test_observability_off_still_populates_diagnoses():
    system, analysis, profile, baseline = prepared("yarn")
    result = run_campaign(
        system, analysis, profile.dynamic_points[:4], baseline=baseline,
        matcher=matcher_for_system("yarn"),
    )
    assert result.metrics is None
    assert len(result.diagnoses()) == 4
