"""Scale-store contracts: memoized host filter, sharded value map.

Three guarantees from the scale kernel (DESIGN.md "Scale kernel"):

* the per-store memoized host filter is invisible — a real workload run
  feeds a memoized store and an uncached reference store byte-identical
  contents (the satellite regression pin);
* :class:`HostMatcher` implements exactly the `host_in_value` decision
  procedure, prefilter and compiled patterns notwithstanding (property
  test against a naive reimplementation);
* the sharded ``value_node`` map resolves every query identically to the
  flat dict store under arbitrary process/query interleavings (property
  test), and the auto-shard migration never changes observable contents.
"""

import json
import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis.meta_graph import HostMatcher, host_in_value
from repro.core.injection.online_log import OnlineLogAgent, OnlineMetaStore
from repro.core.injection.sharded_map import ShardedValueMap
from repro.systems.base import run_workload
from tests.conftest import prepared


def _naive_host_in_value(value, hosts):
    # the pre-scale-kernel reference implementation, verbatim semantics
    bare_match = None
    for host in hosts:
        escaped = re.escape(host)
        if re.search(rf"(?<![A-Za-z0-9]){escaped}:\d+", value):
            return host
        if bare_match is None and re.search(
            rf"(?<![A-Za-z0-9]){escaped}(?![A-Za-z0-9])", value
        ):
            bare_match = host
    return bare_match


class _UncachedStore(OnlineMetaStore):
    """Reference store: no memo, no compiled matcher, no sharding."""

    SHARD_THRESHOLD = 10**9

    def _host_for(self, value):
        return _naive_host_in_value(value, self.hosts)


def _checkpoint_bytes(store):
    cp = store.checkpoint()
    return json.dumps(
        {"node_set": sorted(cp["node_set"]),
         "value_node": dict(sorted(cp["value_node"].items()))},
        sort_keys=True,
    )


# ---------------------------------------------------------------------------
# satellite regression: memoized == uncached on a real run, byte for byte
# ---------------------------------------------------------------------------
def test_memoized_store_byte_identical_to_uncached_on_real_yarn_run():
    system, analysis, profile, _ = prepared("yarn")
    memoized = OnlineMetaStore(analysis.hosts)
    reference = _UncachedStore(analysis.hosts)
    agents = [
        OnlineLogAgent(analysis.index, analysis.log_result.meta_slots, memoized),
        OnlineLogAgent(analysis.index, analysis.log_result.meta_slots, reference),
    ]

    def before_run(cluster, workload):
        for agent in agents:
            agent.attach(cluster.log_collector)

    run_workload(system, seed=7, before_run=before_run)
    assert memoized.size() > 0, "the run must actually exercise the store"
    assert _checkpoint_bytes(memoized) == _checkpoint_bytes(reference)
    # the memo actually engaged, and resolves every seen value identically
    assert memoized._host_cache
    for value in list(memoized.value_node) + sorted(memoized.node_set):
        assert memoized.query(value) == reference.query(value)


# ---------------------------------------------------------------------------
# HostMatcher == naive host_in_value, any hosts, any value
# ---------------------------------------------------------------------------
_hosts_st = st.lists(
    st.sampled_from(
        ["node1", "node2", "node10", "rm", "nn", "zk1", "node-a",
         "10.0.0.1", "host_x", "n"]
    ),
    min_size=1, max_size=6, unique=True,
)
_value_st = st.lists(
    st.sampled_from(
        ["node1", "node2", "node10", "rm", "n", ":8031", ":", " ", "[", "]",
         "-", "_", ".", "10.0.0.1", "x", "1", "host_x", "node-a"]
    ),
    min_size=0, max_size=8,
).map("".join)


@given(_hosts_st, _value_st)
@settings(max_examples=300, deadline=None)
def test_host_matcher_equals_naive_reference(hosts, value):
    assert HostMatcher(hosts)(value) == _naive_host_in_value(value, hosts)
    assert host_in_value(value, hosts) == _naive_host_in_value(value, hosts)


def test_host_matcher_port_form_beats_bare_and_respects_order():
    hosts = ["node2", "node1"]
    # node1 has the port form, node2 only the bare form: port wins even
    # though node2 comes first in configuration order
    assert HostMatcher(hosts)("node2 spoke to node1:8031") == "node1"
    # two bare forms: configuration order wins
    assert HostMatcher(hosts)("node1 and node2") == "node2"
    # word boundaries: node1 must not match inside node10
    assert HostMatcher(["node1"])("node10:42349") is None


# ---------------------------------------------------------------------------
# sharded == flat under arbitrary process/query interleavings
# ---------------------------------------------------------------------------
_HOSTS = ["node1", "node2", "node3", "rm"]
_values_st = st.lists(
    st.one_of(
        st.sampled_from(
            ["node1:8031", "node2:8031", "node3", "rm", "app_01", "app_02",
             "container_7", "  node1:8031  ", "", "attempt_9", "zz"]
        ),
        st.text(min_size=0, max_size=6),
    ),
    min_size=0, max_size=4,
)
_ops_st = st.lists(
    st.one_of(
        st.tuples(st.just("process"), _values_st),
        st.tuples(st.just("query"), st.sampled_from(
            ["node1:8031", "app_01", "container_7", "missing", "rm"]
        )),
    ),
    min_size=0, max_size=30,
)


@given(_ops_st)
@settings(max_examples=200, deadline=None)
def test_sharded_store_resolves_identically_to_flat(monkeypatch_ops):
    flat = OnlineMetaStore(_HOSTS)
    sharded = OnlineMetaStore(_HOSTS)
    sharded.value_node = ShardedValueMap(n_shards=8)
    for op, payload in monkeypatch_ops:
        if op == "process":
            flat.process(payload)
            sharded.process(payload)
        else:
            assert flat.query(payload) == sharded.query(payload)
    assert dict(flat.value_node) == dict(sharded.value_node)
    assert flat.node_set == sharded.node_set
    assert flat.size() == sharded.size()
    for value in dict(flat.value_node):
        assert flat.query(value) == sharded.query(value)


# ---------------------------------------------------------------------------
# the sharded map itself, and the auto-shard migration
# ---------------------------------------------------------------------------
def test_sharded_map_is_a_faithful_mutable_mapping():
    m = ShardedValueMap(n_shards=4)
    m["a"] = "node1"
    m["b"] = "node2"
    assert m["a"] == "node1" and "b" in m and "c" not in m
    assert m.get("c") is None and m.get("c", "x") == "x"
    assert m.setdefault("a", "zz") == "node1"  # existing key sticks
    assert m.setdefault("c", "node3") == "node3"
    assert len(m) == 3
    assert sorted(m) == ["a", "b", "c"]
    assert dict(m) == {"a": "node1", "b": "node2", "c": "node3"}
    assert m == {"a": "node1", "b": "node2", "c": "node3"}  # content eq
    del m["b"]
    assert len(m) == 2 and "b" not in m
    assert sum(m.shard_sizes().values()) == 2
    with pytest.raises(ValueError):
        ShardedValueMap(n_shards=3)
    round_trip = ShardedValueMap.from_flat(dict(m), n_shards=2)
    assert round_trip == m


def test_store_migrates_to_sharded_past_threshold(monkeypatch):
    monkeypatch.setattr(OnlineMetaStore, "SHARD_THRESHOLD", 8)
    store = OnlineMetaStore(_HOSTS)
    for i in range(20):
        store.process([f"value_{i}", "node1:8031"])
    assert isinstance(store.value_node, ShardedValueMap)
    assert store.query("value_3") == "node1"
    assert store.size() == 21  # 20 values + the node value itself
    # checkpoints export flat dicts whatever the live representation
    cp = store.checkpoint()
    assert type(cp["value_node"]) is dict and len(cp["value_node"]) == 21
    fresh = OnlineMetaStore(_HOSTS)
    fresh.restore(cp)
    assert isinstance(fresh.value_node, ShardedValueMap)
    assert dict(fresh.value_node) == dict(store.value_node)
    small = OnlineMetaStore(_HOSTS)
    small.restore({"node_set": set(), "value_node": {"v": "node1"}})
    assert type(small.value_node) is dict  # below threshold stays flat
