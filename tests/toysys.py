"""A deliberately tiny system used as a fixture by the analysis tests.

Its shape mirrors the Figure 3/Figure 5 example: a master tracking workers
and tasks, with one constructor-only-indexed record class, one collection
keyed by a meta-info id, a sanity-checked read, an unused read, and a
return-only read that must be promoted.
"""

from typing import Dict, Optional

from repro.cluster import Node, tracked_dict, tracked_ref
from repro.cluster.ids import NodeId, TaskId
from repro.mtlog import get_logger

LOG = get_logger("toysys")


class WorkerRecord:
    """Indexed by its constructor-only node id (Definition 2's C rule)."""

    node_id: NodeId = tracked_ref()

    def __init__(self, node_id: NodeId):
        self.node_id = node_id
        self.slots = 4

    def __str__(self) -> str:
        return str(self.node_id)


class UnrelatedRecord:
    """Never logged, never related to nodes: must stay non-meta."""

    def __init__(self, label: str):
        self.label = label
        self.weight = 1.0


class ToyMaster(Node):
    role = "toymaster"
    critical = True
    exception_policy = "abort"
    default_port = 7100

    workers: Dict[NodeId, WorkerRecord] = tracked_dict()
    tasks: Dict[TaskId, str] = tracked_dict()
    last_worker: Optional[NodeId] = tracked_ref()
    counter: int = tracked_ref()

    def on_register(self, src: str, node_id: NodeId) -> None:
        self.workers.put(node_id, WorkerRecord(node_id))
        self.last_worker = node_id
        LOG.info("Worker from {} registered as {}", node_id.host, node_id)

    def on_assign(self, src: str, task_id: TaskId, node_id: NodeId) -> None:
        self.tasks.put(task_id, str(node_id))
        LOG.info("Assigned task {} to worker {}", task_id, node_id)

    def lookup_worker(self, node_id: NodeId) -> Optional[WorkerRecord]:
        return self.workers.get(node_id)  # return-only: promoted

    def on_use(self, src: str, node_id: NodeId) -> None:
        record = self.lookup_worker(node_id)  # promoted crash point
        record.slots -= 1

    def on_checked_use(self, src: str, node_id: NodeId) -> None:
        record = self.lookup_worker(node_id)
        if record is None:
            return  # sanity-checked: pruned
        record.slots -= 1

    def on_peek(self, src: str, node_id: NodeId) -> None:
        LOG.debug("peek {}", self.workers.get(node_id))  # logging-only: pruned

    def on_count(self, src: str) -> None:
        self.counter = (self.counter or 0) + 1  # int field: never meta-info
