"""The service WAL's contract: every acknowledged frame survives a kill.

The write-ahead log may lose at most the one frame being written at the
instant of a SIGKILL (torn tail, truncated on the next open); any frame
whose append returned must replay, and damage anywhere *other* than the
tail must refuse to replay rather than silently drop acknowledged work.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.service import WalCorrupt, WriteAheadLog, atomic_write_json
from repro.service.wal import frame_crc, read_json


def _records(n):
    return [{"type": "transition", "job_id": f"job-{i}", "state": "queued",
             "at": float(i), "extra": {}} for i in range(n)]


# ----------------------------------------------------------------------
# round trip
# ----------------------------------------------------------------------
def test_append_replay_roundtrip(tmp_path):
    path = tmp_path / "wal.jsonl"
    records = _records(25)
    with WriteAheadLog(path) as wal:
        for rec in records:
            wal.append(rec)
    assert WriteAheadLog(path).replay() == records


def test_replay_missing_file_is_empty(tmp_path):
    wal = WriteAheadLog(tmp_path / "absent.jsonl")
    assert wal.replay() == []
    wal.open_append()
    wal.append({"k": 1})
    wal.close()
    assert WriteAheadLog(wal.path).replay() == [{"k": 1}]


def test_frames_are_crc_checked(tmp_path):
    path = tmp_path / "wal.jsonl"
    rec = {"type": "submit", "job": {"job_id": "j1"}}
    path.write_text(json.dumps({"crc": frame_crc(rec), "rec": rec}) + "\n")
    assert WriteAheadLog(path).replay() == [rec]
    # same line, wrong checksum: the frame is dead
    path.write_text(json.dumps({"crc": frame_crc(rec) ^ 1, "rec": rec}) + "\n")
    assert WriteAheadLog(path).replay() == []


# ----------------------------------------------------------------------
# torn tails
# ----------------------------------------------------------------------
def _write_frames(path, records):
    with WriteAheadLog(path) as wal:
        for rec in records:
            wal.append(rec)


@pytest.mark.parametrize("tear", [
    lambda raw: raw[:-3],                      # kill mid-line
    lambda raw: raw + b'{"crc": 1, "rec"',     # kill mid-next-frame
    lambda raw: raw + b"garbage not json\n",   # junk appended
])
def test_torn_tail_truncated_on_open(tmp_path, tear):
    path = tmp_path / "wal.jsonl"
    records = _records(10)
    _write_frames(path, records)
    path.write_bytes(tear(path.read_bytes()))

    wal = WriteAheadLog(path)
    replayed = wal.replay()
    assert replayed == records[:len(replayed)]
    assert len(replayed) >= 9
    assert wal.torn_frames == 1
    wal.open_append()
    wal.append({"post": "recovery"})
    wal.close()
    # the torn bytes are gone; old frames + the new one replay cleanly
    assert WriteAheadLog(path).replay() == replayed + [{"post": "recovery"}]


def test_valid_frame_after_bad_frame_refuses(tmp_path):
    path = tmp_path / "wal.jsonl"
    _write_frames(path, _records(5))
    lines = path.read_bytes().splitlines(keepends=True)
    lines[2] = b"damaged mid-log\n"
    path.write_bytes(b"".join(lines))
    with pytest.raises(WalCorrupt):
        WriteAheadLog(path).replay()


def test_sigkill_mid_append_loses_at_most_one_frame(tmp_path):
    """A real kill -9 against a busy appender: the prefix survives."""
    path = tmp_path / "wal.jsonl"
    script = textwrap.dedent(f"""
        import sys
        from repro.service import WriteAheadLog
        wal = WriteAheadLog({str(path)!r}, fsync=False)
        wal.replay(); wal.open_append()
        i = 0
        while True:
            wal.append({{"seq": i, "pad": "x" * 512}})
            i += 1
            if i == 50:
                print("warm", flush=True)
    """)
    proc = subprocess.Popen([sys.executable, "-c", script],
                            stdout=subprocess.PIPE)
    assert proc.stdout.readline().strip() == b"warm"
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait()

    wal = WriteAheadLog(path)
    replayed = wal.replay()  # must not raise: only the tail may be torn
    assert wal.torn_frames <= 1
    assert [rec["seq"] for rec in replayed] == list(range(len(replayed)))
    assert len(replayed) >= 50
    wal.open_append()
    wal.append({"seq": len(replayed), "pad": ""})
    wal.close()
    assert WriteAheadLog(path).replay()[-1]["seq"] == len(replayed)


# ----------------------------------------------------------------------
# atomic JSON documents
# ----------------------------------------------------------------------
def test_atomic_write_json_roundtrip_and_no_temp_litter(tmp_path):
    path = tmp_path / "doc.json"
    atomic_write_json(path, {"a": 1})
    atomic_write_json(path, {"a": 2}, fsync=False)
    assert read_json(path) == {"a": 2}
    assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]
    assert read_json(tmp_path / "missing.json") is None
