"""Unit tests for meta-info id rendering and the liveness helpers."""

from repro.cluster import Cluster, HeartbeatSender, LivenessMonitor, Node
from repro.cluster.ids import (
    CLUSTER_TIMESTAMP,
    ApplicationAttemptId,
    ApplicationId,
    BlockId,
    BlockPoolId,
    ContainerId,
    DatanodeInfo,
    InetAddressAndPort,
    JobId,
    JvmId,
    KubeNodeName,
    NodeId,
    PodId,
    RegionInfo,
    ServerName,
    TaskAttemptId,
    TaskId,
    TokenRange,
    ZNodePath,
)


def test_id_wire_formats_match_real_systems():
    app = ApplicationId(CLUSTER_TIMESTAMP, 1)
    attempt = ApplicationAttemptId(app, 1)
    job = JobId(app)
    task = TaskId(job, "m", 3)
    ta = TaskAttemptId(task, 0)
    assert str(NodeId("node3", 42349)) == "node3:42349"
    assert str(app) == "application_1559000000_0001"
    assert str(job) == "job_1559000000_0001"
    assert str(attempt) == "appattempt_1559000000_0001_000001"
    assert str(ContainerId(attempt, 3)) == "container_1559000000_0001_01_000003"
    assert str(task) == "task_1559000000_0001_m_000003"
    assert str(ta) == "attempt_1559000000_0001_m_000003_0"
    assert str(JvmId(job, "m", 4)) == "jvm_1559000000_0001_m_000004"


def test_hdfs_hbase_cassandra_kube_ids():
    assert str(BlockId(1073741825)) == "blk_1073741825"
    info = DatanodeInfo(NodeId("node2", 9866), "DS-1")
    assert "node2:9866" in str(info)
    assert str(BlockPoolId(1, "nn")).startswith("BP-1-nn-")
    sn = ServerName("node2", 16020, CLUSTER_TIMESTAMP)
    assert str(sn) == "node2,16020,1559000000"
    assert sn.address == "node2:16020"
    assert str(RegionInfo("usertable", "row01", 1)) == "usertable,row01,1"
    assert str(ZNodePath("/hbase").child("rs")) == "/hbase/rs"
    assert str(InetAddressAndPort("node1", 7000)) == "node1:7000"
    assert str(TokenRange(5, 10)) == "(5,10]"
    assert str(KubeNodeName("node1")) == "node1"
    assert str(PodId("default", "web-0")) == "default/web-0"


def test_ids_are_hashable_value_types():
    app = ApplicationId(CLUSTER_TIMESTAMP, 1)
    assert ApplicationId(CLUSTER_TIMESTAMP, 1) == app
    assert len({app, ApplicationId(CLUSTER_TIMESTAMP, 1)}) == 1
    assert app != ApplicationId(CLUSTER_TIMESTAMP, 2)


# ---------------------------------------------------------------------------
# liveness
# ---------------------------------------------------------------------------
class Master(Node):
    role = "m"
    exception_policy = "log"

    def __init__(self, cluster, name, **kw):
        super().__init__(cluster, name, **kw)
        self.expired = []
        self.monitor = LivenessMonitor(self, expiry=1.0, interval=0.25,
                                       on_expire=self.expired.append)

    def on_start(self):
        self.monitor.start()

    def on_hb(self, src, key):
        self.monitor.ping(key)


class Worker(Node):
    role = "w"
    exception_policy = "log"

    def __init__(self, cluster, name, master="m", **kw):
        super().__init__(cluster, name, **kw)
        self.hb = HeartbeatSender(self, master, "hb", 0.2,
                                  payload=lambda: {"key": self.name})

    def on_start(self):
        self.hb.start()


def test_heartbeats_keep_entity_alive():
    c = Cluster("t")
    with c:
        m = Master(c, "m")
        w = Worker(c, "w")
        c.start_all()
        m.monitor.register("w")
        c.run(until=3.0)
        assert m.expired == []


def test_silent_entity_expires_once():
    c = Cluster("t")
    with c:
        m = Master(c, "m")
        c.start_all()
        m.monitor.register("ghost")
        c.run(until=3.0)
        assert m.expired == ["ghost"]


def test_crashed_worker_expires_after_timeout():
    c = Cluster("t")
    with c:
        m = Master(c, "m")
        w = Worker(c, "w")
        c.start_all()
        m.monitor.register("w")
        c.run(until=1.0)
        c.crash("w")
        c.run(until=1.4)
        assert m.expired == []  # not yet: inside the expiry window
        c.run(until=4.0)
        assert m.expired == ["w"]


def test_unregister_prevents_expiry():
    c = Cluster("t")
    with c:
        m = Master(c, "m")
        c.start_all()
        m.monitor.register("x")
        m.monitor.unregister("x")
        c.run(until=3.0)
        assert m.expired == []


def test_ping_for_unknown_key_ignored():
    c = Cluster("t")
    with c:
        m = Master(c, "m")
        c.start_all()
        m.monitor.ping("never-registered")
        c.run(until=2.0)
        assert m.monitor.tracked() == []


def test_heartbeat_stops_when_sender_dies():
    c = Cluster("t")
    with c:
        m = Master(c, "m")
        w = Worker(c, "w")
        c.start_all()
        m.monitor.register("w")
        c.run(until=0.5)
        w.begin_shutdown()
        c.run(until=4.0)
        assert m.expired == ["w"]
