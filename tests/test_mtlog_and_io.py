"""Unit tests for the logging substrate and the simulated IO streams."""

import pytest

from repro.cluster import Cluster, Node
from repro.cluster.io import (
    IO_BUS,
    CorruptStreamError,
    FileInputStream,
    FileOutputStream,
    SimDisk,
)
from repro.mtlog import LogRecord, get_logger, level_rank, render

LOG = get_logger("tests.mtlog")


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------
def test_render_substitutes_in_order():
    assert render("a {} c {}", ("b", "d")) == "a b c d"


def test_render_no_placeholders():
    assert render("plain", ()) == "plain"


def test_render_extra_placeholder_left_visible():
    assert render("x {} y {}", ("1",)) == "x 1 y {}"


def test_render_extra_args_appended():
    assert render("x {}", ("1", "2")) == "x 1 2"


def test_level_rank_ordering():
    assert level_rank("trace") < level_rank("debug") < level_rank("info")
    assert level_rank("warn") < level_rank("error") < level_rank("fatal")


# ---------------------------------------------------------------------------
# collection
# ---------------------------------------------------------------------------
class Talker(Node):
    role = "talker"
    exception_policy = "log"

    def on_say(self, src, what):
        LOG.info("{} says {}", self.name, what)


def test_records_capture_template_args_and_node():
    c = Cluster("t")
    with c:
        a = Talker(c, "a")
        b = Talker(c, "b")
        c.start_all()
        a.send("b", "say", what="hello")
        c.run()
        records = [r for r in c.log_collector.records if r.component == "tests.mtlog"]
    assert len(records) == 1
    record = records[0]
    assert record.template == "{} says {}"
    assert record.args == ("b", "hello")
    assert record.message == "b says hello"
    assert record.node == "b"
    assert record.location[0] == __name__


def test_logging_outside_simulation_is_noop():
    LOG.info("nobody is listening {}", 1)  # must not raise


def test_collector_by_node_and_grep():
    c = Cluster("t")
    with c:
        a = Talker(c, "a")
        b = Talker(c, "b")
        c.start_all()
        a.send("b", "say", what="needle")
        c.run()
        assert c.log_collector.grep("needle")
        assert any(r.node == "b" for r in c.log_collector.by_node["b"])


def test_collector_subscribers_see_live_records():
    c = Cluster("t")
    seen = []
    c.log_collector.subscribe(seen.append)
    with c:
        a = Talker(c, "a")
        c.start_all()
    assert seen  # lifecycle records flowed through


def test_collector_isolates_raising_subscribers():
    """Regression: one raising subscriber must not starve the others.

    Before the fix, the exception aborted notification of every later
    subscriber and escaped into the logging node's handler, where the
    node's exception policy would misread it as a system failure.
    """
    c = Cluster("t")
    notified = []

    def bad(record):
        raise RuntimeError("tail agent bug")

    c.log_collector.subscribe(bad)
    c.log_collector.subscribe(notified.append)
    with c:
        a = Talker(c, "a")
        c.start_all()
        a.send("a", "say", what="still-collected")
        c.run()
    # collection bookkeeping and later subscribers were unaffected
    assert c.log_collector.grep("still-collected")
    assert len(notified) == len(c.log_collector.records)
    # every failure was recorded against the offending subscriber
    assert c.log_collector.subscriber_errors
    for subscriber, record, exc in c.log_collector.subscriber_errors:
        assert subscriber is bad
        assert isinstance(exc, RuntimeError)
    # the log stream itself shows no abort: the node kept running
    assert a.is_running()


def test_error_records_and_signature():
    c = Cluster("t")
    with c:
        a = Talker(c, "a")
        a.start()
        try:
            raise ValueError("oops")
        except ValueError as exc:
            from repro import runtime
            runtime.push_node("a")
            LOG.error("failed doing {}", "thing", exc=exc)
            runtime.pop_node()
        errors = c.log_collector.errors()
    assert len(errors) == 1
    sig = errors[0].signature()
    assert sig[1] == "error"
    assert sig[3] == "ValueError"
    assert "ValueError: oops" in str(errors[0])


def test_signature_ignores_runtime_values():
    r1 = LogRecord(1.0, "n1", "c", "error", "x {}", ("1",), "x 1", ("m", 1))
    r2 = LogRecord(9.0, "n2", "c", "error", "x {}", ("2",), "x 2", ("m", 1))
    assert r1.signature() == r2.signature()


# ---------------------------------------------------------------------------
# IO streams
# ---------------------------------------------------------------------------
def test_write_then_read_roundtrip():
    disk = SimDisk()
    out = FileOutputStream(disk, "/f")
    out.write("a")
    out.write("b")
    out.flush()
    out.close()
    stream = FileInputStream(disk, "/f")
    assert stream.read_all() == ["a", "b"]
    stream.close()
    assert stream.closed


def test_unflushed_tail_is_corrupt_after_crash():
    disk = SimDisk()
    out = FileOutputStream(disk, "/f")
    out.write("a")
    out.flush()
    out.write("b")  # never flushed
    disk.truncate_open_files()  # the machine crashed
    stream = FileInputStream(disk, "/f")
    assert stream.read() == "a"
    assert stream.read() == "b"
    with pytest.raises(CorruptStreamError):
        stream.read()


def test_missing_file_read_raises():
    with pytest.raises(CorruptStreamError):
        FileInputStream(SimDisk(), "/nope").read()


def test_io_bus_emits_events_with_locations():
    IO_BUS.reset()
    events = []
    IO_BUS.add_hook(events.append)
    try:
        disk = SimDisk()
        out = FileOutputStream(disk, "/f")
        out.write("x")
        out.flush()
        out.close()
    finally:
        IO_BUS.reset()
    before = [e.method for e in events if e.phase == "before"]
    after = [e.method for e in events if e.phase == "after"]
    assert before == ["write", "flush", "close"]
    assert after == ["write", "flush", "close"]  # each op also emits post-op
    assert all(e.location[0] == __name__ for e in events)
    assert all(e.cls.endswith("FileOutputStream") for e in events)


def test_io_bus_disabled_is_silent():
    IO_BUS.reset()
    disk = SimDisk()
    out = FileOutputStream(disk, "/f")
    out.write("x")  # no hooks: nothing should happen
    assert not IO_BUS.enabled
