"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import NodeCrashedError, SimulationError
from repro.sim import Event, SimLoop


def test_initial_time_is_zero():
    assert SimLoop().now == 0.0


def test_schedule_and_run_single_event():
    loop = SimLoop()
    fired = []
    loop.schedule(1.5, lambda: fired.append(loop.now))
    loop.run()
    assert fired == [1.5]


def test_events_fire_in_time_order():
    loop = SimLoop()
    order = []
    loop.schedule(3.0, lambda: order.append("c"))
    loop.schedule(1.0, lambda: order.append("a"))
    loop.schedule(2.0, lambda: order.append("b"))
    loop.run()
    assert order == ["a", "b", "c"]


def test_ties_break_by_schedule_order():
    loop = SimLoop()
    order = []
    for tag in ("first", "second", "third"):
        loop.schedule(1.0, lambda t=tag: order.append(t))
    loop.run()
    assert order == ["first", "second", "third"]


def test_negative_delay_rejected():
    loop = SimLoop()
    with pytest.raises(SimulationError):
        loop.schedule(-0.1, lambda: None)


def test_schedule_at_absolute_time():
    loop = SimLoop()
    seen = []
    loop.schedule_at(2.5, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [2.5]


def test_schedule_at_past_rejected():
    loop = SimLoop()
    loop.schedule(1.0, lambda: None)
    loop.run()
    with pytest.raises(SimulationError):
        loop.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire():
    loop = SimLoop()
    fired = []
    event = loop.schedule(1.0, lambda: fired.append(1))
    event.cancel()
    loop.run()
    assert fired == []


def test_cancel_is_idempotent():
    loop = SimLoop()
    event = loop.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    assert event.cancelled


def test_cancel_owned_by_cancels_only_that_owner():
    loop = SimLoop()
    fired = []
    loop.schedule(1.0, lambda: fired.append("a"), owner="node-a")
    loop.schedule(1.0, lambda: fired.append("b"), owner="node-b")
    cancelled = loop.cancel_owned_by("node-a")
    loop.run()
    assert cancelled == 1
    assert fired == ["b"]


def test_run_until_deadline_advances_clock():
    loop = SimLoop()
    loop.schedule(10.0, lambda: None)
    loop.run(until=5.0)
    assert loop.now == 5.0
    assert loop.pending() == 1


def test_run_until_deadline_then_continue():
    loop = SimLoop()
    fired = []
    loop.schedule(10.0, lambda: fired.append(1))
    loop.run(until=5.0)
    loop.run()
    assert fired == [1]
    assert loop.now == 10.0


def test_stop_when_predicate_stops_early_without_advancing():
    loop = SimLoop()
    fired = []
    loop.schedule(1.0, lambda: fired.append(1))
    loop.schedule(2.0, lambda: fired.append(2))
    loop.run(until=100.0, stop_when=lambda: bool(fired))
    assert fired == [1]
    assert loop.now == pytest.approx(1.0)


def test_stop_method_halts_outer_run():
    loop = SimLoop()
    fired = []

    def first():
        fired.append(1)
        loop.stop()

    loop.schedule(1.0, first)
    loop.schedule(2.0, lambda: fired.append(2))
    loop.run()
    assert fired == [1]


def test_events_scheduled_during_run_are_processed():
    loop = SimLoop()
    order = []

    def outer():
        order.append("outer")
        loop.schedule(0.5, lambda: order.append("inner"))

    loop.schedule(1.0, outer)
    loop.run()
    assert order == ["outer", "inner"]
    assert loop.now == pytest.approx(1.5)


def test_event_budget_exceeded_raises():
    loop = SimLoop()

    def rearm():
        loop.schedule(0.001, rearm)

    loop.schedule(0.001, rearm)
    with pytest.raises(SimulationError):
        loop.run(max_events=100)


def test_pump_processes_bounded_window():
    loop = SimLoop()
    order = []

    def handler():
        order.append("handler-start")
        loop.pump(1.0)
        order.append("handler-end")

    loop.schedule(1.0, handler)
    loop.schedule(1.5, lambda: order.append("during-pump"))
    loop.schedule(3.0, lambda: order.append("after-pump"))
    loop.run()
    assert order == ["handler-start", "during-pump", "handler-end", "after-pump"]


def test_pump_advances_clock_to_window_end():
    loop = SimLoop()
    times = []

    def handler():
        loop.pump(2.0)
        times.append(loop.now)

    loop.schedule(1.0, handler)
    loop.run()
    assert times == [pytest.approx(3.0)]


def test_pump_negative_duration_rejected():
    loop = SimLoop()
    with pytest.raises(SimulationError):
        loop.pump(-1.0)


def test_pump_reentrancy_limit():
    loop = SimLoop()

    def recurse():
        loop.schedule(0.01, recurse)
        loop.pump(0.1)

    loop.schedule(0.01, recurse)
    with pytest.raises(SimulationError):
        loop.run()


def test_node_crashed_error_is_swallowed():
    loop = SimLoop()
    fired = []

    def dies():
        fired.append("pre")
        raise NodeCrashedError("n1")

    loop.schedule(1.0, dies)
    loop.schedule(2.0, lambda: fired.append("post"))
    loop.run()
    assert fired == ["pre", "post"]


def test_other_exceptions_propagate_without_handler():
    loop = SimLoop()
    loop.schedule(1.0, lambda: 1 / 0)
    with pytest.raises(ZeroDivisionError):
        loop.run()


def test_exception_handler_can_consume():
    loop = SimLoop()
    seen = []
    loop.exception_handler = lambda event, exc: (seen.append(type(exc).__name__), True)[1]
    loop.schedule(1.0, lambda: 1 / 0)
    loop.schedule(2.0, lambda: seen.append("after"))
    loop.run()
    assert seen == ["ZeroDivisionError", "after"]


def test_events_processed_counter():
    loop = SimLoop()
    for i in range(5):
        loop.schedule(float(i + 1), lambda: None)
    loop.run()
    assert loop.events_processed == 5


def test_event_repr_mentions_state():
    event = Event(1.0, lambda: None, owner="x", kind="timer")
    assert "pending" in repr(event)
    event.cancel()
    assert "cancelled" in repr(event)


def test_quiescent_run_with_until_advances_to_deadline():
    loop = SimLoop()
    loop.run(until=7.0)
    assert loop.now == 7.0
