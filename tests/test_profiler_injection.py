"""Unit tests for the profiler and the injection machinery."""

import pytest

from repro.core.injection import OnlineMetaStore
from repro.core.injection.online_log import OnlineLogAgent
from repro.core.injection.oracles import Baseline, evaluate_run
from repro.core.profiler import DynamicCrashPoint, PointIndex
from repro.systems.base import RunReport
from tests.conftest import prepared

HOSTS = ["node1", "node2", "node3", "rm"]


# ---------------------------------------------------------------------------
# profiler
# ---------------------------------------------------------------------------
def test_profiler_finds_dynamic_points_with_stacks():
    _, analysis, profile, _ = prepared("yarn")
    assert profile.dynamic_points
    for dpoint in profile.dynamic_points:
        assert dpoint.stack, "every dynamic point carries a call string"
        assert len(dpoint.stack) <= 5


def test_profiler_discards_unexecuted_static_points():
    _, analysis, profile, _ = prepared("yarn")
    executed = {(d.point.module, d.point.lineno, d.point.op)
                for d in profile.dynamic_points}
    for point in profile.unexecuted:
        assert (point.module, point.lineno, point.op) not in executed


def test_profiler_converges_within_three_iterations():
    _, _, profile, _ = prepared("yarn")
    assert 1 <= profile.iterations <= 3


def test_point_index_matches_by_location_field_and_op():
    _, analysis, profile, _ = prepared("yarn")
    index = PointIndex(analysis.crash.crash_points)
    # every profiled point must be matchable through the index again
    assert all(d.point in analysis.crash.crash_points for d in profile.dynamic_points)


# ---------------------------------------------------------------------------
# the online store (Figure 6)
# ---------------------------------------------------------------------------
def test_store_node_values_join_hashset():
    store = OnlineMetaStore(HOSTS)
    store.process(["node3:42349"])
    assert "node3:42349" in store.node_set
    assert store.query("node3:42349") == "node3"


def test_store_associates_by_cooccurrence_fifo():
    store = OnlineMetaStore(HOSTS)
    store.process(["container_3", "node3:42349"])
    store.process(["attempt_3", "container_3"])
    assert store.query("container_3") == "node3"
    assert store.query("attempt_3") == "node3"


def test_store_discards_unassociated_values():
    store = OnlineMetaStore(HOSTS)
    store.process(["orphan_value"])
    assert store.query("orphan_value") is None
    assert store.size() == 0


def test_store_first_association_wins():
    store = OnlineMetaStore(HOSTS)
    store.process(["v", "node1:42349"])
    store.process(["v", "node2:42349"])
    assert store.query("v") == "node1"


def test_store_query_falls_back_to_host_filter():
    store = OnlineMetaStore(HOSTS)
    assert store.query("MetricsRegionServer for node2,16020,1") == "node2"
    assert store.query("completely unknown") is None


def test_agent_ships_only_meta_slots():
    from repro.core.analysis import PatternIndex
    from repro.core.analysis.logging_statements import LogStatement
    from repro.mtlog.records import LogRecord

    stmt = LogStatement("m", 1, "info", "Assigned {} on {}", ("c", "n"))
    index = PatternIndex.from_statements([stmt])
    store = OnlineMetaStore(HOSTS)
    # only slot 1 (the node) is a meta-info variable
    agent = OnlineLogAgent(index, {((stmt.module, stmt.lineno), 1)}, store)
    agent(LogRecord(1.0, "rm", "c", "info", "Assigned {} on {}",
                    ("c_1", "node1:42349"), "Assigned c_1 on node1:42349", ("m", 1)))
    assert store.query("node1:42349") == "node1"
    assert store.query("c_1") is None  # slot 0 was filtered out
    assert agent.values_shipped == 1


# ---------------------------------------------------------------------------
# oracles
# ---------------------------------------------------------------------------
def _report(**kw) -> RunReport:
    base = dict(system="x", seed=0, completed=True, succeeded=True,
                duration=1.0, deadline=4.0, wall_seconds=0.0)
    base.update(kw)
    return RunReport(**base)


def _baseline() -> Baseline:
    return Baseline(system="x", signatures=set(), mean_duration=1.0, runs=3)


def test_oracle_clean_run_not_flagged():
    verdict = evaluate_run(_report(), _baseline())
    assert not verdict.flagged


def test_oracle_job_failure():
    verdict = evaluate_run(_report(succeeded=False), _baseline())
    assert verdict.job_failure and verdict.flagged
    assert verdict.kinds() == ["job-failure"]


def test_oracle_hang():
    verdict = evaluate_run(_report(completed=False, succeeded=False), _baseline())
    assert verdict.hang and verdict.flagged


def test_oracle_uncommon_exception_vs_baseline():
    from repro.mtlog import LogCollector
    from repro.mtlog.records import LogRecord

    log = LogCollector()
    record = LogRecord(1.0, "rm", "comp", "error", "bad {}", ("x",), "bad x",
                       ("m", 1), exc="ValueError: x")
    log.collect(record)
    verdict = evaluate_run(_report(log=log), _baseline())
    assert verdict.uncommon_exceptions
    # ... but a baseline containing the signature silences it
    seen = Baseline(system="x", signatures={record.signature()},
                    mean_duration=1.0, runs=3)
    verdict2 = evaluate_run(_report(log=log), seen)
    assert not verdict2.uncommon_exceptions


def test_oracle_critical_abort_is_cluster_down():
    verdict = evaluate_run(_report(critical_aborts=["rm:Boom"]), _baseline())
    assert verdict.critical_aborts and "cluster-down" in verdict.kinds()


# ---------------------------------------------------------------------------
# trigger matching discipline
# ---------------------------------------------------------------------------
def test_trigger_fires_exactly_once_per_run():
    from repro.bugs import matcher_for_system
    from repro.core.injection import run_one_injection
    from tests.conftest import find_dpoints

    system, analysis, profile, baseline = prepared("yarn")
    dpoint = find_dpoints(profile, "on_register_node", field="nodes", op="write")[0]
    outcome = run_one_injection(system, analysis, dpoint, baseline,
                                matcher=matcher_for_system("yarn"))
    assert outcome.fired
    assert outcome.injection is not None
    # exactly one fault injected even though registration happens 3 times
    cluster_faults = len(outcome.dpoint.stack) >= 0  # structural smoke
    assert outcome.injection.kind in ("crash", "shutdown")
