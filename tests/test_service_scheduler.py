"""The fleet scheduler: fairness, stealing, and determinism.

Dispatch order is part of the service's crash story — the restarted
daemon rebuilds the scheduler from the WAL-replayed job table, so the
same queue must always produce the same schedule.
"""

import pytest

from repro.service import FleetScheduler


def drain_slot(sched, slot):
    out = []
    while True:
        pick = sched.next_job(slot)
        if pick is None:
            return out
        out.append(pick)


def test_rejects_zero_slots():
    with pytest.raises(ValueError):
        FleetScheduler(0)


def test_round_robin_enqueue_balances_one_system():
    sched = FleetScheduler(3)
    slots = [sched.add(f"j{i}", "yarn") for i in range(6)]
    assert slots == [0, 1, 2, 0, 1, 2]
    assert sched.snapshot()["per_slot"] == [2, 2, 2]


def test_per_system_fair_dispatch_interleaves():
    """Six yarn jobs queued first must not starve the cassandra one."""
    sched = FleetScheduler(1)
    for i in range(3):
        sched.add(f"y{i}", "yarn")
    sched.add("c0", "cassandra")
    sched.add("h0", "hdfs")
    systems = [system for _, system, _ in drain_slot(sched, 0)]
    # ring over sorted nonempty systems: every system seen within one lap
    assert systems.index("cassandra") < 3
    assert systems.index("hdfs") < 3
    assert systems.count("yarn") == 3


def test_fifo_within_a_system():
    sched = FleetScheduler(1)
    for i in range(4):
        sched.add(f"j{i}", "yarn")
    assert [jid for jid, _, _ in drain_slot(sched, 0)] == \
        ["j0", "j1", "j2", "j3"]


def test_idle_slot_steals_from_most_loaded():
    sched = FleetScheduler(2)
    # stack slot 0 by adding with rr, then draining slot 1's own share
    for i in range(4):
        sched.add(f"j{i}", "yarn")  # slots 0,1,0,1
    assert sched.next_job(1)[0] == "j1"
    assert sched.next_job(1)[0] == "j3"
    job_id, system, stolen = sched.next_job(1)
    assert (job_id, system, stolen) == ("j0", "yarn", True)
    assert sched.stats["stolen"] == 1
    # and the rightful owner still gets the rest
    assert sched.next_job(0) == ("j2", "yarn", False)
    assert sched.next_job(0) is None
    assert sched.pending() == 0


def test_deterministic_rebuild():
    """Same add sequence -> same dispatch sequence, every time."""
    def schedule():
        sched = FleetScheduler(2)
        for i, system in enumerate(
                ["yarn", "hdfs", "yarn", "cassandra", "hdfs", "yarn"]):
            sched.add(f"j{i}", system)
        order = []
        slot = 0
        while True:
            pick = sched.next_job(slot)
            if pick is None:
                break
            order.append((slot, pick))
            slot = (slot + 1) % 2
        return order

    assert schedule() == schedule()


def test_snapshot_shape():
    sched = FleetScheduler(2)
    sched.add("j0", "yarn")
    sched.add("j1", "hdfs")
    snap = sched.snapshot()
    assert snap["pending"] == 2
    assert snap["per_system"] == {"yarn": 1, "hdfs": 1}
    assert len(snap["per_slot"]) == 2
    assert snap["stats"]["enqueued"] == 2
