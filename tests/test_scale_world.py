"""Heavy-traffic worlds: the ``world_scale`` knob and its contracts.

The scale kernel (DESIGN.md "Scale kernel") grows the simulated world by
a ``world_scale`` factor: cluster width multiplies, offered load squares,
and per-node load stays constant.  These tests pin the contracts that let
the knob coexist with the determinism guarantees:

* ``world_scale=1`` builds a world byte-identical to the default
  construction (same records, same durations) for both generator systems;
* the scaled worlds actually scale (topology, jobs, rows) and still run
  their workloads to success;
* the scheduler's heap index — which only engages past
  ``yarn.sched_scan_max`` registered nodes — picks exactly the node the
  seed-scale linear scan picks, forced on at seed scale via config;
* a scaled campaign killed mid-run resumes from its journal to the same
  bug set and outcome fingerprint as an uninterrupted run.
"""

from typing import Any, Dict, Optional

import pytest

from repro.bugs import matcher_for_system
from repro.core.analysis import analyze_system
from repro.core.injection import CampaignConfig, build_baseline, run_campaign
from repro.core.profiler import profile_system
from repro.systems import get_system, run_workload
from repro.systems.hbase.system import HBaseSystem
from repro.systems.yarn.system import YarnSystem


def _records(report):
    return [(r.time, r.node, r.level, r.message) for r in report.log.records]


# ----------------------------------------------------------------------
# world_scale=1 is the seed world, byte for byte
# ----------------------------------------------------------------------

@pytest.mark.parametrize("system_cls", [YarnSystem, HBaseSystem])
def test_world_scale_one_is_byte_identical_to_default(system_cls):
    plain = run_workload(system_cls(), seed=0, keep_cluster=True)
    scaled = run_workload(system_cls(world_scale=1), seed=0, keep_cluster=True)
    assert scaled.succeeded and plain.succeeded
    assert scaled.duration == plain.duration
    assert scaled.cluster.loop.events_processed == plain.cluster.loop.events_processed
    assert _records(scaled) == _records(plain)


def test_get_system_world_scale_dispatch():
    assert get_system("yarn", world_scale=10).world_scale == 10
    assert get_system("hbase", world_scale=4).world_scale == 4
    assert get_system("yarn").world_scale == 1
    with pytest.raises(ValueError, match="heavy-traffic"):
        get_system("zookeeper", world_scale=10)


# ----------------------------------------------------------------------
# the scaled worlds scale, and still pass their workloads
# ----------------------------------------------------------------------

def test_yarn_10x_world_topology_and_success():
    system = YarnSystem(world_scale=10)
    report = run_workload(system, seed=0, keep_cluster=True)
    assert report.completed and report.succeeded
    nms = [n for n in report.cluster.nodes.values() if n.role == "nodemanager"]
    assert len(nms) == 30  # 3 NodeManagers x world_scale
    # offered load squares: 100 jobs, each with its own AM node
    client = report.cluster.nodes["client"]
    assert len(client.submitted) == 100
    assert client.jobs_done() == 100
    assert report.cluster.loop.events_processed > 10_000


def test_hbase_scaled_world_runs_both_pe_passes():
    system = HBaseSystem(world_scale=4)
    report = run_workload(system, seed=0, keep_cluster=True)
    assert report.completed and report.succeeded
    rs = [n for n in report.cluster.nodes.values() if n.role == "regionserver"]
    assert len(rs) == 12  # 3 RegionServers x world_scale
    client = report.cluster.nodes["client"]
    assert client.status_rows == 8 * 4 * 4  # rows square with world_scale
    assert client.verified_rows == client.status_rows
    assert client.phase == 2  # the rolling-restart re-verify pass ran


# ----------------------------------------------------------------------
# the scheduler index picks what the linear scan picks
# ----------------------------------------------------------------------

def test_scheduler_index_matches_linear_scan_at_seed():
    # sched_scan_max=0 forces the indexed path for every placement; the
    # seed default never engages it.  Same seed, same world: every
    # container must land on the same host at the same time.
    scan = run_workload(YarnSystem(), seed=0, keep_cluster=True)
    indexed = run_workload(YarnSystem(), seed=0, keep_cluster=True,
                           config={"yarn.sched_scan_max": 0})
    assert scan.succeeded and indexed.succeeded
    assert indexed.duration == scan.duration

    def assignments(report):
        return [(t, m) for (t, _, _, m) in _records(report)
                if "Assigned container" in m]

    assert assignments(indexed) == assignments(scan)
    assert len(assignments(scan)) > 0


# ----------------------------------------------------------------------
# scaled campaign: kill mid-run, resume from the journal, same answer
# ----------------------------------------------------------------------

_PREPARED_10X: Dict[str, Any] = {}


def _prepared_10x():
    """(system, analysis, profile, baseline) for the 10x yarn world."""
    if not _PREPARED_10X:
        system = YarnSystem(world_scale=10)
        analysis = analyze_system(system)
        profile = profile_system(system, analysis, max_iterations=1)
        baseline = build_baseline(system, seeds=[0])
        _PREPARED_10X.update(system=system, analysis=analysis,
                             profile=profile, baseline=baseline)
    return (_PREPARED_10X["system"], _PREPARED_10X["analysis"],
            _PREPARED_10X["profile"], _PREPARED_10X["baseline"])


def _campaign_10x(journal_path: Optional[str] = None, n_points: int = 3):
    system, analysis, profile, baseline = _prepared_10x()
    cfg = CampaignConfig(journal_path=journal_path, classify_timeouts=False)
    return run_campaign(
        system, analysis, profile.dynamic_points[:n_points], campaign=cfg,
        baseline=baseline, matcher=matcher_for_system("yarn"),
    )


def _outcome_dicts(result):
    dicts = [o.to_dict() for o in result.outcomes]
    for d in dicts:
        d.pop("wall_seconds")
    return dicts


def test_scaled_campaign_profile_finds_points():
    _, _, profile, _ = _prepared_10x()
    assert len(profile.dynamic_points) >= 3


def test_scaled_campaign_journal_kill_and_resume(tmp_path):
    reference = _campaign_10x()
    journal = tmp_path / "campaign10x.jsonl"

    full = _campaign_10x(journal_path=str(journal))
    assert _outcome_dicts(full) == _outcome_dicts(reference)
    lines = journal.read_text().splitlines()
    assert len(lines) == 3 + 1  # meta + one line per point

    # simulate a kill after the first completed point, mid-write of the 2nd
    journal.write_text("\n".join(lines[:2]) + "\n" + lines[2][:29])

    resumed = _campaign_10x(journal_path=str(journal))
    assert resumed.resumed == 1
    assert _outcome_dicts(resumed) == _outcome_dicts(reference)
    assert sorted(resumed.detected_bugs()) == sorted(reference.detected_bugs())
    assert [d.to_dict() for d in resumed.diagnoses()] == \
        [d.to_dict() for d in reference.diagnoses()]
