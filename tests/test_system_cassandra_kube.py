"""Integration tests for the miniature Cassandra and Kubernetes."""

from repro.systems import get_system, run_workload
from tests.conftest import find_dpoints, inject_at, prepared

CA_PATCHED = {"patched_bugs": frozenset({"CA-15131"})}
KUBE_PATCHED = {"patched_bugs": frozenset({"KUBE-53647", "KUBE-68173"})}


def run_cassandra(seed=0, config=None, before_run=None, deadline=None):
    return run_workload(get_system("cassandra"), seed=seed, config=config,
                        before_run=before_run, deadline=deadline)


def run_kube(seed=0, config=None, before_run=None, deadline=None):
    return run_workload(get_system("kube"), seed=seed, config=config,
                        before_run=before_run, deadline=deadline)


# ---------------------------------------------------------------------------
# Cassandra
# ---------------------------------------------------------------------------
def test_clean_stress_succeeds():
    report = run_cassandra()
    assert report.succeeded
    assert report.log.errors() == []


def test_data_replicated_to_quorum():
    report = run_cassandra()
    stores = [report.cluster.nodes[f"node{i}"].store.snapshot() for i in (1, 2, 3)]
    for i in range(8):
        key = f"key{i:04d}"
        assert sum(1 for s in stores if key in s) >= 2  # quorum of RF=3


def test_single_node_crash_tolerated_by_quorum():
    report = run_cassandra(
        seed=1,
        config=CA_PATCHED,
        before_run=lambda c, w: c.loop.schedule(0.5, lambda: c.crash("node2")),
        deadline=60.0,
    )
    assert report.succeeded
    assert any("is now DOWN" in r.message for r in report.log.records)


def test_graceful_departure_announced_via_gossip():
    report = run_cassandra(
        seed=1,
        config=CA_PATCHED,
        before_run=lambda c, w: c.loop.schedule(0.5, lambda: c.shutdown("node3")),
        deadline=60.0,
    )
    assert report.succeeded
    assert any("announced shutdown" in r.message for r in report.log.records)


def test_commitlog_written_on_mutations():
    report = run_cassandra()
    logged = sum(
        len(report.cluster.nodes[f"node{i}"].disk.files.get(f"/cassandra/commitlog/node{i}", []))
        for i in (1, 2, 3)
    )
    assert logged >= 8  # every key mutated somewhere


def test_ca_15131_coordinator_error_on_removed_endpoint():
    outcome = inject_at("cassandra", "on_coordinate_write", field="endpoints", op="read")
    assert "CA-15131" in outcome.matched_bugs
    assert any("Unexpected exception during write" in u
               for u in outcome.verdict.uncommon_exceptions)


def test_ca_15131_patched_point_pruned():
    # The fix adds a None-guard, so the patched build no longer has this
    # crash point at all (optimization 3 prunes it).
    _, _, profile, _ = prepared("cassandra", CA_PATCHED)
    assert find_dpoints(profile, "on_coordinate_write", field="endpoints",
                        op="read") == []


# ---------------------------------------------------------------------------
# Kubernetes
# ---------------------------------------------------------------------------
def test_clean_deploy_and_drain_succeeds():
    report = run_kube()
    assert report.succeeded
    assert report.log.errors() == []
    assert any("Draining node" in r.message for r in report.log.records)


def test_pods_rescheduled_off_drained_node():
    report = run_kube(config=KUBE_PATCHED)
    cp = report.cluster.nodes["cp"]
    drained = report.cluster.nodes["kubectl"].drain_target
    for record in cp.pods.values():
        assert record.node != drained


def test_kubelet_crash_evicts_and_rebinds():
    # Crash the node the pods land on (placement is stable-hash: node1)
    # before the workload's own drain phase starts.
    report = run_kube(
        seed=1,
        config=KUBE_PATCHED,
        before_run=lambda c, w: c.loop.schedule(0.35, lambda: c.crash("node1")),
        deadline=60.0,
    )
    assert report.succeeded
    assert any("NotReady; evicting" in r.message for r in report.log.records)


def test_kube_53647_scheduler_binding_error():
    outcome = inject_at("kube", "_schedule_pending", field="nodes", op="read")
    assert "kube-53647" in outcome.matched_bugs


def test_kube_68173_eviction_races_pod_deletion():
    outcome = inject_at("kube", "_remove_node", field="pods", op="read")
    assert "kube-68173" in outcome.matched_bugs
    assert outcome.verdict.critical_aborts  # the control plane aborts


def test_kube_68173_patched_point_pruned():
    _, _, profile, _ = prepared("kube", KUBE_PATCHED)
    assert find_dpoints(profile, "_remove_node", field="pods", op="read") == []
