"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
``pip install -e .`` cannot build a PEP 660 editable wheel.  This shim lets
pip fall back to ``setup.py develop``.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
